//! The description-preprocessing pipeline of the paper's §4.4.
//!
//! "we unified the cases …, removed the stop words and special characters …,
//! replaced contractions (e.g., *identifier's* is changed to *identifier*),
//! and tense (past tense is changed to present tense …)". The pipeline is:
//! case-fold → expand contractions → tokenize (drop specials) → drop stop
//! words → Porter-stem.
//!
//! # The buffer-reuse design
//!
//! The original implementation materialised four generations of strings per
//! call: a full-text lowercase `String`, a second contraction-expanded
//! `String`, one `String` per token, and one more per stem. [`Preprocessor`]
//! runs the same pipeline in a single pass over the input with **one**
//! reusable token scratch buffer: words are scanned in place, contractions
//! are matched against the raw (case-insensitively compared) word, tokens
//! are lowercased byte-by-byte into the scratch, stop words are rejected by
//! binary search over the sorted [`crate::stopwords::STOPWORDS`] slice, and
//! Porter stemming mutates the scratch in place
//! ([`crate::stemmer::stem_in_place`]). Pure-ASCII text — essentially all
//! NVD descriptions — allocates nothing at all; non-ASCII text pays a single
//! `str::to_lowercase` so that locale-free but *context-sensitive* mappings
//! (final sigma) stay byte-identical with the original pipeline.
//!
//! The term stream is **guaranteed identical** to the historical
//! allocate-per-token pipeline; `reference_preprocess` in this module's
//! tests keeps the old composition alive as a property-test oracle.

use std::cell::RefCell;

use crate::stemmer::stem_in_place;
use crate::stopwords::is_stopword;

/// Common English contractions expanded before stemming. Possessive `'s` is
/// handled structurally (tokenisation splits it off and `s` is dropped as a
/// stop word), so this table only carries irregular forms.
const CONTRACTIONS: &[(&str, &[&str])] = &[
    ("can't", &["can", "not"]),
    ("cannot", &["can", "not"]),
    ("won't", &["will", "not"]),
    ("shan't", &["shall", "not"]),
    ("n't", &["not"]), // generic -n't suffix fallback
    ("i'm", &["i", "am"]),
    ("it's", &["it", "is"]),
    ("let's", &["let", "us"]),
    ("they're", &["they", "are"]),
    ("we're", &["we", "are"]),
    ("you're", &["you", "are"]),
    ("he's", &["he", "is"]),
    ("she's", &["she", "is"]),
    ("that's", &["that", "is"]),
    ("there's", &["there", "is"]),
    ("what's", &["what", "is"]),
    ("who's", &["who", "is"]),
    ("i've", &["i", "have"]),
    ("we've", &["we", "have"]),
    ("they've", &["they", "have"]),
    ("you've", &["you", "have"]),
    ("i'll", &["i", "will"]),
    ("we'll", &["we", "will"]),
    ("it'll", &["it", "will"]),
    ("i'd", &["i", "would"]),
    ("we'd", &["we", "would"]),
];

/// Expands contractions in raw text (before tokenisation strips the
/// apostrophes). Matching is case-insensitive; replacements are lowercase.
///
/// Retained as a standalone (allocating) utility; the hot path in
/// [`Preprocessor`] performs the same expansion inline without building the
/// intermediate string.
///
/// ```
/// use textkit::preprocess::expand_contractions;
/// assert_eq!(expand_contractions("It's used; can't access"), "it is used; can not access");
/// ```
pub fn expand_contractions(text: &str) -> String {
    let lower = text.to_lowercase();
    let mut out = String::with_capacity(lower.len());
    for word in lower.split_inclusive(char::is_whitespace) {
        let (core, trail) = split_trailing_ws(word);
        let mut replaced = false;
        for (pat, exp) in CONTRACTIONS {
            if core == *pat {
                out.push_str(&exp.join(" "));
                replaced = true;
                break;
            }
        }
        if !replaced {
            // Generic -n't handling: "doesn't" → "does not".
            if let Some(stem_part) = core.strip_suffix("n't") {
                out.push_str(stem_part);
                out.push_str(" not");
            } else if let Some(owner) = core.strip_suffix("'s") {
                // Possessive / clitic: keep the owner word only.
                out.push_str(owner);
            } else {
                out.push_str(core);
            }
        }
        out.push_str(trail);
    }
    out
}

fn split_trailing_ws(word: &str) -> (&str, &str) {
    let end = word.trim_end_matches(char::is_whitespace).len();
    word.split_at(end)
}

/// ASCII whitespace as `char::is_whitespace` sees it — including vertical
/// tab (`0x0B`), which `u8::is_ascii_whitespace` omits.
fn is_ws_byte(b: u8) -> bool {
    matches!(b, b'\t' | b'\n' | b'\x0b' | b'\x0c' | b'\r' | b' ')
}

/// A reusable preprocessing pipeline: one scratch token buffer, reused
/// across calls, with an allocation-free ASCII fast path.
///
/// Construct once and feed it many descriptions; the scratch grows to the
/// longest token ever seen and stays there. Terms are handed to a callback
/// as `&str` views into the scratch — collect them, intern them, or hash
/// them without the pipeline ever allocating on your behalf.
///
/// ```
/// use textkit::preprocess::Preprocessor;
/// let mut pre = Preprocessor::new();
/// let mut terms = Vec::new();
/// pre.for_each_term("This capability can be accessed", |t| terms.push(t.to_owned()));
/// assert_eq!(terms, vec!["capabl", "access"]);
/// ```
#[derive(Debug, Default)]
pub struct Preprocessor {
    /// Current token: lowercased UTF-8 bytes, stemmed in place.
    token: Vec<u8>,
}

impl Preprocessor {
    /// Creates a preprocessor with an empty scratch buffer.
    pub fn new() -> Self {
        Self {
            token: Vec::with_capacity(32),
        }
    }

    /// Runs the full pipeline over `text`, invoking `emit` once per final
    /// (stemmed, non-stop-word) term, in order. The `&str` argument is only
    /// valid for the duration of the call.
    pub fn for_each_term(&mut self, text: &str, mut emit: impl FnMut(&str)) {
        if text.is_ascii() {
            self.ascii_text(text.as_bytes(), &mut emit);
        } else {
            // Unicode fallback: `str::to_lowercase` is context-sensitive
            // (e.g. Greek final sigma), which per-char folding cannot
            // reproduce — pay one allocation to keep the term stream
            // byte-identical with the reference pipeline.
            let lowered = text.to_lowercase();
            self.unicode_text(&lowered, &mut emit);
        }
    }

    /// Convenience wrapper collecting the terms into owned `String`s.
    pub fn preprocess(&mut self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.for_each_term(text, |t| out.push(t.to_owned()));
        out
    }

    // -- ASCII fast path ----------------------------------------------------

    fn ascii_text(&mut self, bytes: &[u8], emit: &mut impl FnMut(&str)) {
        let mut i = 0;
        while i < bytes.len() {
            if is_ws_byte(bytes[i]) {
                i += 1;
                continue;
            }
            let start = i;
            while i < bytes.len() && !is_ws_byte(bytes[i]) {
                i += 1;
            }
            self.ascii_word(&bytes[start..i], emit);
        }
    }

    /// One whitespace-delimited word: contraction handling, then
    /// tokenisation of the (possibly rewritten) pieces.
    fn ascii_word(&mut self, word: &[u8], emit: &mut impl FnMut(&str)) {
        for (pat, exp) in CONTRACTIONS {
            if word.eq_ignore_ascii_case(pat.as_bytes()) {
                for replacement in *exp {
                    self.ascii_tokens(replacement.as_bytes(), emit);
                }
                return;
            }
        }
        let n = word.len();
        if n >= 3 && word[n - 3..].eq_ignore_ascii_case(b"n't") {
            // Generic -n't: "doesn't" → "does not".
            self.ascii_tokens(&word[..n - 3], emit);
            self.ascii_tokens(b"not", emit);
        } else if n >= 2 && word[n - 2..].eq_ignore_ascii_case(b"'s") {
            // Possessive / clitic: keep the owner word only.
            self.ascii_tokens(&word[..n - 2], emit);
        } else {
            self.ascii_tokens(word, emit);
        }
    }

    /// Maximal alphanumeric runs of `bytes`, lowercased into the scratch.
    fn ascii_tokens(&mut self, bytes: &[u8], emit: &mut impl FnMut(&str)) {
        let mut i = 0;
        while i < bytes.len() {
            if !bytes[i].is_ascii_alphanumeric() {
                i += 1;
                continue;
            }
            self.token.clear();
            while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                self.token.push(bytes[i].to_ascii_lowercase());
                i += 1;
            }
            self.finish_token(emit);
        }
    }

    // -- Unicode fallback (operates on already str-lowercased text) --------

    fn unicode_text(&mut self, lowered: &str, emit: &mut impl FnMut(&str)) {
        let mut rest = lowered;
        while let Some(start) = rest.find(|c: char| !c.is_whitespace()) {
            let tail = &rest[start..];
            let end = tail.find(char::is_whitespace).unwrap_or(tail.len());
            self.unicode_word(&tail[..end], emit);
            rest = &tail[end..];
        }
    }

    fn unicode_word(&mut self, word: &str, emit: &mut impl FnMut(&str)) {
        for (pat, exp) in CONTRACTIONS {
            if word == *pat {
                for replacement in *exp {
                    self.unicode_tokens(replacement, emit);
                }
                return;
            }
        }
        if let Some(prefix) = word.strip_suffix("n't") {
            self.unicode_tokens(prefix, emit);
            self.unicode_tokens("not", emit);
        } else if let Some(owner) = word.strip_suffix("'s") {
            self.unicode_tokens(owner, emit);
        } else {
            self.unicode_tokens(word, emit);
        }
    }

    fn unicode_tokens(&mut self, piece: &str, emit: &mut impl FnMut(&str)) {
        self.token.clear();
        for ch in piece.chars() {
            if ch.is_alphanumeric() {
                // Mirror `tokenize`: per-char fold (a no-op on text already
                // lowercased by `str::to_lowercase`, but kept for parity).
                let mut buf = [0u8; 4];
                for lc in ch.to_lowercase() {
                    self.token
                        .extend_from_slice(lc.encode_utf8(&mut buf).as_bytes());
                }
            } else if !self.token.is_empty() {
                self.finish_token(emit);
                self.token.clear();
            }
        }
        if !self.token.is_empty() {
            self.finish_token(emit);
        }
    }

    /// Stop-word filter + in-place stem + emit for the scratch token.
    fn finish_token(&mut self, emit: &mut impl FnMut(&str)) {
        let tok = std::str::from_utf8(&self.token).expect("tokens are valid UTF-8");
        if is_stopword(tok) {
            return;
        }
        stem_in_place(&mut self.token);
        emit(std::str::from_utf8(&self.token).expect("stemmer preserves UTF-8"));
    }
}

thread_local! {
    /// Per-thread scratch backing the free [`preprocess`] function, so the
    /// historical API stays allocation-free internally even when called
    /// from `minipar` worker threads.
    static SCRATCH: RefCell<Preprocessor> = RefCell::new(Preprocessor::new());
}

/// Fully preprocesses a description into normalised terms: contraction
/// expansion, tokenisation with case folding and special-character removal,
/// stop-word removal, Porter stemming.
///
/// Runs on a per-thread reusable [`Preprocessor`]; only the returned
/// `Vec<String>` is allocated. For corpus-scale work prefer
/// [`crate::encoder::PreprocessedCorpus`], which interns terms instead of
/// materialising owned strings per occurrence.
///
/// ```
/// use textkit::preprocess::preprocess;
/// // The paper's example: "This capability can be accessed" → "capability access".
/// assert_eq!(preprocess("This capability can be accessed"), vec!["capabl", "access"]);
/// ```
pub fn preprocess(text: &str) -> Vec<String> {
    SCRATCH.with(|pre| pre.borrow_mut().preprocess(text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use proptest::sample::select;

    /// The original allocate-per-token pipeline, kept verbatim as the
    /// oracle the buffer-reuse implementation must match token-for-token.
    fn reference_preprocess(text: &str) -> Vec<String> {
        let expanded = expand_contractions(text);
        crate::tokenize::tokenize(&expanded)
            .into_iter()
            .filter(|t| !is_stopword(t))
            .map(|t| crate::stemmer::stem(&t))
            .collect()
    }

    #[test]
    fn contraction_expansion() {
        assert_eq!(expand_contractions("can't"), "can not");
        assert_eq!(expand_contractions("doesn't"), "does not");
        assert_eq!(expand_contractions("identifier's"), "identifier");
        assert_eq!(expand_contractions("It's"), "it is");
        assert_eq!(expand_contractions("plain words"), "plain words");
    }

    #[test]
    fn preprocess_drops_stopwords_and_stems() {
        let terms = preprocess("The attacker used a crafted header to cause a denial of service.");
        assert!(!terms.iter().any(|t| t == "the" || t == "a" || t == "to"));
        assert!(terms.iter().any(|t| t == "attack")); // attacker → attack
        assert!(terms.iter().any(|t| t == "craft")); // crafted → craft
    }

    #[test]
    fn preprocess_tense_normalisation() {
        // "used" and "uses" and "using" collapse to the same stem.
        let a = preprocess("attackers used the flaw");
        let b = preprocess("attackers using the flaw");
        let c = preprocess("attacker uses the flaw");
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn preprocess_empty_and_punctuation() {
        assert!(preprocess("").is_empty());
        assert!(preprocess("!!! ??? ...").is_empty());
        // Pure stop-word text vanishes.
        assert!(preprocess("this is the and of a").is_empty());
    }

    #[test]
    fn preprocess_keeps_cwe_tokens() {
        let terms = preprocess("CWE-89: SQL injection in login form");
        assert!(terms.iter().any(|t| t == "cwe"));
        assert!(terms.iter().any(|t| t == "89"));
        assert!(terms.iter().any(|t| t == "sql"));
    }

    #[test]
    fn matches_reference_on_tricky_fixed_cases() {
        let cases = [
            "",
            "   \t \n ",
            "This capability can be accessed!",
            "can't. won't, doesn'T shan't CANNOT",
            "identifier's O'Reilly's n't 's xn't",
            "CWE-89: SQL injection (login form) — crafted requests",
            "脆弱性 情報 identifiers' flaw",
            "Σίσυφος ΑΣ ΟΔΥΣΣΕΥΣ naïve İstanbul",
            "mixed\u{00A0}nbsp\u{000B}vtab\u{000C}ff",
            "they're you've it'll we'd LET'S",
            "a-bn't c_d's e.f'g 1234n't 5's",
            "ﬁle ﬂaw ǅungla ß",
        ];
        for text in cases {
            let mut pre = Preprocessor::new();
            let mut got = Vec::new();
            pre.for_each_term(text, |t| got.push(t.to_owned()));
            assert_eq!(got, reference_preprocess(text), "input {text:?}");
            // And the free function (thread-local scratch) agrees too.
            assert_eq!(preprocess(text), got, "input {text:?}");
        }
    }

    #[test]
    fn scratch_reuse_is_stateless_across_calls() {
        // One Preprocessor fed many different texts must behave exactly
        // like a fresh instance per text.
        let texts = [
            "Buffer overflow in the TIFF decoder",
            "can't access",
            "",
            "Σ sigma ΑΣ",
            "SQL injection via the id parameter",
        ];
        let mut shared = Preprocessor::new();
        for text in texts {
            let mut reused = Vec::new();
            shared.for_each_term(text, |t| reused.push(t.to_owned()));
            let mut fresh = Preprocessor::new();
            let mut once = Vec::new();
            fresh.for_each_term(text, |t| once.push(t.to_owned()));
            assert_eq!(reused, once, "input {text:?}");
        }
    }

    /// One fragment of generated text: plain words, contraction forms,
    /// possessives, punctuation runs, unicode snippets, odd whitespace.
    fn arb_fragment() -> impl Strategy<Value = String> {
        prop_oneof![
            "[a-zA-Z0-9]{0,10}",
            "[a-zA-Z]{0,6}n't",
            "[a-zA-Z]{0,6}'s",
            "[-!?.,;:'\"(){}_/]{0,4}",
            " {0,3}",
            select(vec![
                "can't", "CAN'T", "won't", "cannot", "it's", "LET'S", "n't", "'s", "i'm",
                "they're", "we've", "it'll", "we'd", "shan't",
            ])
            .prop_map(str::to_owned),
            select(vec![
                "脆弱性",
                "Σίσυφος",
                "ΑΣ",
                "ΟΔΥΣΣΕΥΣ",
                "İstanbul",
                "naïve",
                "ÅNGSTRÖM",
                "αβγ",
                "ß",
                "ﬁle",
                "Ǆungla",
                "\u{00A0}",
                "\u{000B}",
                "\t",
                "\n",
            ])
            .prop_map(str::to_owned),
        ]
    }

    proptest! {
        #[test]
        fn pipeline_matches_reference_on_arbitrary_text(
            a in arb_fragment(),
            b in arb_fragment(),
            c in arb_fragment(),
            d in arb_fragment(),
            e in arb_fragment(),
            f in arb_fragment(),
            g in arb_fragment(),
            h in arb_fragment(),
        ) {
            let text = format!("{a}{b}{c} {d}{e} {f}{g}{h}");
            let mut pre = Preprocessor::new();
            let mut got = Vec::new();
            pre.for_each_term(&text, |t| got.push(t.to_owned()));
            prop_assert_eq!(&got, &reference_preprocess(&text), "input {:?}", text);
        }
    }
}
