//! The description-preprocessing pipeline of the paper's §4.4.
//!
//! "we unified the cases …, removed the stop words and special characters …,
//! replaced contractions (e.g., *identifier's* is changed to *identifier*),
//! and tense (past tense is changed to present tense …)". The pipeline here
//! is: tokenize (case-folds and drops specials) → expand contractions → drop
//! stop words → Porter-stem.

use crate::stemmer::stem;
use crate::stopwords::is_stopword;
use crate::tokenize::tokenize;

/// Common English contractions expanded before stemming. Possessive `'s` is
/// handled structurally (tokenisation splits it off and `s` is dropped as a
/// stop word), so this table only carries irregular forms.
const CONTRACTIONS: &[(&str, &[&str])] = &[
    ("can't", &["can", "not"]),
    ("cannot", &["can", "not"]),
    ("won't", &["will", "not"]),
    ("shan't", &["shall", "not"]),
    ("n't", &["not"]), // generic -n't suffix fallback
    ("i'm", &["i", "am"]),
    ("it's", &["it", "is"]),
    ("let's", &["let", "us"]),
    ("they're", &["they", "are"]),
    ("we're", &["we", "are"]),
    ("you're", &["you", "are"]),
    ("he's", &["he", "is"]),
    ("she's", &["she", "is"]),
    ("that's", &["that", "is"]),
    ("there's", &["there", "is"]),
    ("what's", &["what", "is"]),
    ("who's", &["who", "is"]),
    ("i've", &["i", "have"]),
    ("we've", &["we", "have"]),
    ("they've", &["they", "have"]),
    ("you've", &["you", "have"]),
    ("i'll", &["i", "will"]),
    ("we'll", &["we", "will"]),
    ("it'll", &["it", "will"]),
    ("i'd", &["i", "would"]),
    ("we'd", &["we", "would"]),
];

/// Expands contractions in raw text (before tokenisation strips the
/// apostrophes). Matching is case-insensitive; replacements are lowercase.
///
/// ```
/// use textkit::preprocess::expand_contractions;
/// assert_eq!(expand_contractions("It's used; can't access"), "it is used; can not access");
/// ```
pub fn expand_contractions(text: &str) -> String {
    let lower = text.to_lowercase();
    let mut out = String::with_capacity(lower.len());
    for word in lower.split_inclusive(char::is_whitespace) {
        let (core, trail) = split_trailing_ws(word);
        let mut replaced = false;
        for (pat, exp) in CONTRACTIONS {
            if core == *pat {
                out.push_str(&exp.join(" "));
                replaced = true;
                break;
            }
        }
        if !replaced {
            // Generic -n't handling: "doesn't" → "does not".
            if let Some(stem_part) = core.strip_suffix("n't") {
                out.push_str(stem_part);
                out.push_str(" not");
            } else if let Some(owner) = core.strip_suffix("'s") {
                // Possessive / clitic: keep the owner word only.
                out.push_str(owner);
            } else {
                out.push_str(core);
            }
        }
        out.push_str(trail);
    }
    out
}

fn split_trailing_ws(word: &str) -> (&str, &str) {
    let end = word.trim_end_matches(char::is_whitespace).len();
    word.split_at(end)
}

/// Fully preprocesses a description into normalised terms: contraction
/// expansion, tokenisation with case folding and special-character removal,
/// stop-word removal, Porter stemming.
///
/// ```
/// use textkit::preprocess::preprocess;
/// // The paper's example: "This capability can be accessed" → "capability access".
/// assert_eq!(preprocess("This capability can be accessed"), vec!["capabl", "access"]);
/// ```
pub fn preprocess(text: &str) -> Vec<String> {
    let expanded = expand_contractions(text);
    tokenize(&expanded)
        .into_iter()
        .filter(|t| !is_stopword(t))
        .map(|t| stem(&t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contraction_expansion() {
        assert_eq!(expand_contractions("can't"), "can not");
        assert_eq!(expand_contractions("doesn't"), "does not");
        assert_eq!(expand_contractions("identifier's"), "identifier");
        assert_eq!(expand_contractions("It's"), "it is");
        assert_eq!(expand_contractions("plain words"), "plain words");
    }

    #[test]
    fn preprocess_drops_stopwords_and_stems() {
        let terms = preprocess("The attacker used a crafted header to cause a denial of service.");
        assert!(!terms.iter().any(|t| t == "the" || t == "a" || t == "to"));
        assert!(terms.iter().any(|t| t == "attack")); // attacker → attack
        assert!(terms.iter().any(|t| t == "craft")); // crafted → craft
    }

    #[test]
    fn preprocess_tense_normalisation() {
        // "used" and "uses" and "using" collapse to the same stem.
        let a = preprocess("attackers used the flaw");
        let b = preprocess("attackers using the flaw");
        let c = preprocess("attacker uses the flaw");
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn preprocess_empty_and_punctuation() {
        assert!(preprocess("").is_empty());
        assert!(preprocess("!!! ??? ...").is_empty());
        // Pure stop-word text vanishes.
        assert!(preprocess("this is the and of a").is_empty());
    }

    #[test]
    fn preprocess_keeps_cwe_tokens() {
        let terms = preprocess("CWE-89: SQL injection in login form");
        assert!(terms.iter().any(|t| t == "cwe"));
        assert!(terms.iter().any(|t| t == "89"));
        assert!(terms.iter().any(|t| t == "sql"));
    }
}
