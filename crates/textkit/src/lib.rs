//! # textkit
//!
//! The natural-language-processing substrate for the `nvd-clean` workspace —
//! the Rust reproduction of *"Cleaning the NVD"* (Anwar et al., DSN 2021).
//!
//! The paper's cleaning pipeline leans on NLP in two places:
//!
//! * **§4.2 name consolidation** needs string-similarity primitives —
//!   [`distance::levenshtein`], [`distance::longest_common_substring_len`],
//!   prefix tests, plus CPE-name tokenisation and abbreviation extraction in
//!   [`tokenize`];
//! * **§4.4 type classification** needs the description-preprocessing
//!   pipeline ([`preprocess::Preprocessor`], a single-pass, buffer-reusing
//!   implementation of case folding, contraction expansion, stop-word
//!   removal via [`stopwords`], and in-place Porter stemming via
//!   [`stemmer`]) and a 512-dimensional sentence embedding
//!   ([`encoder::SentenceEncoder`], the from-scratch substitute for the
//!   Universal Sentence Encoder). Corpus-scale work goes through
//!   [`encoder::PreprocessedCorpus`]: preprocess once, intern every unique
//!   term once, then fit IDF and encode off cached hashes in parallel.
//!
//! Everything is deterministic and dependency-free, so encodings and
//! similarity scores are reproducible across runs and platforms.
//!
//! ## Example
//!
//! ```
//! use textkit::distance::levenshtein;
//! use textkit::encoder::{cosine, SentenceEncoder};
//!
//! // §4.2: catch the human-error pair the paper cites.
//! assert_eq!(levenshtein("tbe_banner_engine", "the_banner_engine"), 1);
//!
//! // §4.4: lexically similar descriptions embed close together.
//! let enc = SentenceEncoder::default();
//! let a = enc.encode("SQL injection allows remote attackers to execute commands");
//! let b = enc.encode("SQL injection lets remote attackers run arbitrary commands");
//! assert!(cosine(&a, &b) > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod distance;
pub mod encoder;
pub mod preprocess;
pub mod stemmer;
pub mod stopwords;
pub mod tokenize;

pub use distance::{levenshtein, longest_common_substring, longest_common_substring_len};
pub use encoder::{cosine, Idf, PreprocessedCorpus, SentenceEncoder, TermInterner};
pub use preprocess::{preprocess, Preprocessor};
pub use stemmer::{stem, stem_in_place};
pub use stopwords::is_stopword;
pub use tokenize::{abbreviation, name_components, strip_specials, tokenize};
