//! English stop-word list.
//!
//! The list is the classic "SMART-ish" core set of function words that the
//! paper removes before encoding descriptions ("commonly used words that do
//! not affect the meaning of the sentence").

/// The stop-word list. Lowercase, sorted ascending — [`is_stopword`] binary
/// searches it directly, so there is no lazily-built hash set to probe (and
/// no per-process init); check tokens after case folding.
pub const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "couldn",
    "did",
    "didn",
    "do",
    "does",
    "doesn",
    "doing",
    "don",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn",
    "has",
    "hasn",
    "have",
    "haven",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "isn",
    "it",
    "its",
    "itself",
    "just",
    "let",
    "me",
    "more",
    "most",
    "mustn",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "per",
    "same",
    "shan",
    "she",
    "should",
    "shouldn",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "upon",
    "very",
    "via",
    "was",
    "wasn",
    "we",
    "were",
    "weren",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "won",
    "would",
    "wouldn",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Whether a (lowercase) token is a stop word.
///
/// A binary search over the sorted [`STOPWORDS`] slice: ~8 branchy string
/// compares on short keys, no hashing, no heap.
///
/// ```
/// use textkit::stopwords::is_stopword;
/// assert!(is_stopword("the"));
/// assert!(!is_stopword("overflow"));
/// ```
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "a", "is", "of", "and", "can", "be", "this", "via"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in [
            "buffer",
            "overflow",
            "remote",
            "attacker",
            "sql",
            "injection",
        ] {
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn list_is_lowercase_sorted_and_unique() {
        // Strictly ascending order is what makes the binary search in
        // `is_stopword` correct; strictness also rules out duplicates.
        for pair in STOPWORDS.windows(2) {
            assert!(pair[0] < pair[1], "{:?} !< {:?}", pair[0], pair[1]);
        }
        for w in STOPWORDS {
            assert_eq!(*w, w.to_lowercase(), "{w} not lowercase");
        }
    }
}
