//! String similarity primitives used by the name-consolidation heuristics.
//!
//! The paper's §4.2 vendor heuristics key on the **longest common substring**
//! (`|LCS| ≥ 3` versus `< 3` splits Table 2's columns) and on **prefix**
//! relations; its product heuristics use **edit distance** to catch character
//! replacement/addition/swap typos (e.g. `tbe_banner_engine` vs
//! `the_banner_engine`, edit distance 1).

/// Levenshtein edit distance between two strings, counting insertions,
/// deletions, and substitutions (each cost 1).
///
/// Operates on `char`s, so multi-byte text is measured in characters rather
/// than bytes.
///
/// ```
/// use textkit::distance::levenshtein;
/// assert_eq!(levenshtein("tbe_banner_engine", "the_banner_engine"), 1);
/// assert_eq!(levenshtein("microsoft", "microsft"), 1);
/// assert_eq!(levenshtein("", "abc"), 3);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row dynamic programming; `prev` holds D[i-1][j-1].
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            let next = (prev + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b.len()]
}

/// Banded Levenshtein with early exit: `Some(distance)` when the edit
/// distance is at most `k`, `None` otherwise.
///
/// Only the `2k + 1`-wide diagonal band of the DP table is computed, and
/// the scan stops as soon as every cell in the current band row exceeds
/// `k` — so near-miss pairs exit after a couple of rows instead of filling
/// the full table. The §4.2 edit-distance blocks call this with
/// `k ∈ {1, 2}`, where the band collapses to three or five cells per row.
/// Agrees exactly with [`levenshtein`]:
/// `levenshtein_at_most(a, b, k) == Some(d)` iff
/// `levenshtein(a, b) == d && d <= k`.
///
/// ```
/// use textkit::distance::levenshtein_at_most;
/// assert_eq!(levenshtein_at_most("tbe_banner_engine", "the_banner_engine", 1), Some(1));
/// assert_eq!(levenshtein_at_most("microsoft", "microsft", 2), Some(1));
/// assert_eq!(levenshtein_at_most("kitten", "sitting", 2), None);
/// assert_eq!(levenshtein_at_most("same", "same", 0), Some(0));
/// ```
pub fn levenshtein_at_most(a: &str, b: &str, k: usize) -> Option<usize> {
    // ASCII fast path: byte length is character length, so the length
    // pre-filter and the band both run on the raw bytes with no per-call
    // character collection.
    if a.is_ascii() && b.is_ascii() {
        if a.len().abs_diff(b.len()) > k {
            return None;
        }
        return banded_distance(a.as_bytes(), b.as_bytes(), k);
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > k {
        return None;
    }
    banded_distance(&a, &b, k)
}

/// The banded DP core of [`levenshtein_at_most`]. Callers have already
/// established `|a.len() - b.len()| <= k`.
fn banded_distance<T: PartialEq + Copy>(a: &[T], b: &[T], k: usize) -> Option<usize> {
    let m = b.len();
    // One DP row of `m + 1` cells: a stack buffer covers every realistic
    // CPE name (so the ASCII path allocates nothing); longer inputs fall
    // back to a heap row.
    const STACK_ROW: usize = 96;
    if m < STACK_ROW {
        banded_distance_in(a, b, k, &mut [0usize; STACK_ROW][..=m])
    } else {
        banded_distance_in(a, b, k, &mut vec![0usize; m + 1])
    }
}

fn banded_distance_in<T: PartialEq + Copy>(
    a: &[T],
    b: &[T],
    k: usize,
    row: &mut [usize],
) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return Some(n.max(m));
    }
    // Values above `k` all behave the same, so they clamp to `inf`; cells
    // outside the band keep `inf` from initialisation, which is sound
    // because a cell at |i - j| > k can never be reached in ≤ k edits.
    let inf = k + 1;
    for (j, cell) in row.iter_mut().enumerate() {
        *cell = if j <= k { j } else { inf };
    }
    for i in 1..=n {
        let lo = i.saturating_sub(k).max(1);
        let hi = (i + k).min(m);
        let mut diag = row[lo - 1]; // D[i-1][lo-1]
        row[lo - 1] = if lo == 1 { i.min(inf) } else { inf }; // D[i][lo-1]
        let mut band_min = row[lo - 1];
        for j in lo..=hi {
            let up = row[j]; // D[i-1][j]
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let d = (diag + cost).min(up + 1).min(row[j - 1] + 1).min(inf);
            diag = up;
            row[j] = d;
            band_min = band_min.min(d);
        }
        if band_min > k {
            return None;
        }
    }
    let d = row[m];
    (d <= k).then_some(d)
}

/// Length of the longest common substring (contiguous) of `a` and `b`.
///
/// This is the signifier the paper uses to grade vendor-pair heuristics:
/// pairs with `|LCS| ≥ 3` are far more likely to be genuinely matching.
///
/// ```
/// use textkit::distance::longest_common_substring_len;
/// assert_eq!(longest_common_substring_len("lynx", "lynx_project"), 4);
/// assert_eq!(longest_common_substring_len("abc", "xyz"), 0);
/// ```
pub fn longest_common_substring_len(a: &str, b: &str) -> usize {
    longest_common_substring(a, b).chars().count()
}

/// The longest common substring itself (first one found on ties).
///
/// ```
/// use textkit::distance::longest_common_substring;
/// assert_eq!(longest_common_substring("bea", "bea_systems"), "bea");
/// ```
pub fn longest_common_substring(a: &str, b: &str) -> String {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return String::new();
    }
    // row[j] = length of common suffix of a[..i+1] and b[..j+1].
    let mut row = vec![0usize; b.len() + 1];
    let mut best_len = 0;
    let mut best_end = 0; // exclusive end in `a`
    for (i, &ca) in a.iter().enumerate() {
        // Iterate j downwards so row[j] still holds the previous row's value.
        for j in (0..b.len()).rev() {
            if ca == b[j] {
                row[j + 1] = row[j] + 1;
                if row[j + 1] > best_len {
                    best_len = row[j + 1];
                    best_end = i + 1;
                }
            } else {
                row[j + 1] = 0;
            }
        }
    }
    a[best_end - best_len..best_end].iter().collect()
}

/// Whether one string is a strict prefix of the other (in either direction),
/// the paper's `Pref` vendor-pair pattern (`lynx` / `lynx_project`).
///
/// Equal strings are not considered prefixes of each other.
pub fn is_strict_prefix_pair(a: &str, b: &str) -> bool {
    a != b && (a.starts_with(b) || b.starts_with(a))
}

/// Jaccard similarity of the character trigram sets of `a` and `b`,
/// in `[0, 1]`. Used as a cheap pre-filter before the quadratic measures.
pub fn trigram_jaccard(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> std::collections::BTreeSet<Vec<char>> {
        let cs: Vec<char> = s.chars().collect();
        if cs.len() < 3 {
            return cs.windows(1).map(|w| w.to_vec()).collect();
        }
        cs.windows(3).map(|w| w.to_vec()).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count() as f64;
    let union = ga.union(&gb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_pairs() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("", ""), 0);
        // Paper §4.2: cisco firmware names differ by one character yet are
        // different products — the heuristic must still measure distance 1.
        assert_eq!(
            levenshtein("ucs-e160dp-m1_firmware", "ucs-e140dp-m1_firmware"),
            1
        );
    }

    #[test]
    fn levenshtein_is_symmetric() {
        let pairs = [("abc", "acb"), ("microsoft", "microsft"), ("", "x")];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn levenshtein_at_most_agrees_with_full_distance() {
        let cases = [
            ("kitten", "sitting"),
            ("flaw", "lawn"),
            ("same", "same"),
            ("", ""),
            ("", "abc"),
            ("microsoft", "microsft"),
            ("tbe_banner_engine", "the_banner_engine"),
            ("ucs-e160dp-m1_firmware", "ucs-e140dp-m1_firmware"),
            ("avast", "avast!"),
            ("脆弱性", "脆弱情報"),
        ];
        for (a, b) in cases {
            let full = levenshtein(a, b);
            for k in 0..6 {
                assert_eq!(
                    levenshtein_at_most(a, b, k),
                    (full <= k).then_some(full),
                    "({a:?}, {b:?}, k={k})"
                );
            }
        }
    }

    #[test]
    fn levenshtein_at_most_band_edges() {
        // Distance exactly k, k+1, and far beyond the band.
        assert_eq!(levenshtein_at_most("abc", "abd", 1), Some(1));
        assert_eq!(levenshtein_at_most("abc", "add", 1), None);
        assert_eq!(levenshtein_at_most("abcdefgh", "abcdefgh____", 2), None);
        assert_eq!(levenshtein_at_most("aaaa", "bbbb", 3), None);
        assert_eq!(levenshtein_at_most("aaaa", "bbbb", 4), Some(4));
    }

    #[test]
    fn lcs_examples_from_paper() {
        // bea / bea_systems share "bea" (3) → strong signal bucket.
        assert_eq!(longest_common_substring("bea", "bea_systems"), "bea");
        assert_eq!(longest_common_substring_len("avast", "avast!"), 5);
        // lms vs lan_management_system share only single characters.
        assert!(longest_common_substring_len("lms", "lan_management_system") < 3);
    }

    #[test]
    fn lcs_empty_and_disjoint() {
        assert_eq!(longest_common_substring("", "abc"), "");
        assert_eq!(longest_common_substring("abc", ""), "");
        assert_eq!(longest_common_substring_len("abc", "xyz"), 0);
    }

    #[test]
    fn lcs_is_substring_of_both() {
        let cases = [
            ("internet_explorer", "internet-explorer"),
            ("quick_heal", "quickheal"),
            ("xyzzy", "zzyx"),
        ];
        for (a, b) in cases {
            let lcs = longest_common_substring(a, b);
            assert!(a.contains(&lcs), "{lcs:?} not in {a:?}");
            assert!(b.contains(&lcs), "{lcs:?} not in {b:?}");
        }
    }

    #[test]
    fn prefix_pairs() {
        assert!(is_strict_prefix_pair("lynx", "lynx_project"));
        assert!(is_strict_prefix_pair("lynx_project", "lynx"));
        assert!(!is_strict_prefix_pair("lynx", "lynx"));
        assert!(!is_strict_prefix_pair("lynx", "linx"));
    }

    #[test]
    fn trigram_jaccard_bounds() {
        assert_eq!(trigram_jaccard("same", "same"), 1.0);
        assert_eq!(trigram_jaccard("", ""), 1.0);
        let j = trigram_jaccard("microsoft", "microsft");
        assert!(j > 0.3 && j < 1.0, "{j}");
        assert_eq!(trigram_jaccard("abc", "xyz"), 0.0);
    }
}
