//! Determinism tests: every textkit primitive is a pure function, so
//! repeated calls on fixed inputs must agree exactly — the name-matching and
//! classification pipelines depend on that for reproducible runs.

use textkit::distance::{levenshtein, longest_common_substring_len, trigram_jaccard};
use textkit::encoder::{Idf, PreprocessedCorpus, SentenceEncoder};
use textkit::preprocess::{preprocess, Preprocessor};
use textkit::stemmer::stem;
use textkit::tokenize::tokenize;

const DESCRIPTION: &str = "SQL injection vulnerability in index.php in ExampleCMS 2.1 \
     allows remote attackers to execute arbitrary SQL commands via the id parameter.";

#[test]
fn tokenize_is_deterministic_and_stable() {
    let first = tokenize(DESCRIPTION);
    for _ in 0..10 {
        assert_eq!(tokenize(DESCRIPTION), first);
    }
    assert!(!first.is_empty());
    // Tokens never carry surrounding whitespace.
    assert!(first.iter().all(|t| t.trim() == t && !t.is_empty()));
}

#[test]
fn stem_is_deterministic_and_idempotent() {
    for word in [
        "vulnerabilities",
        "attackers",
        "execute",
        "injection",
        "allows",
        "overflow",
        "crafted",
    ] {
        let once = stem(word);
        assert_eq!(stem(word), once, "{word}: repeated call differs");
        // Stemming a stem must be a fixed point.
        assert_eq!(stem(&once), once, "{word}: stem not idempotent");
        assert!(!once.is_empty());
    }
}

#[test]
fn preprocess_is_deterministic() {
    let first = preprocess(DESCRIPTION);
    for _ in 0..5 {
        assert_eq!(preprocess(DESCRIPTION), first);
    }
}

#[test]
fn reused_preprocessor_matches_free_function() {
    // The scratch-buffer pipeline behind the free function must behave
    // identically when one Preprocessor instance is reused across many
    // texts — no state may leak between calls.
    let texts = [
        DESCRIPTION,
        "",
        "can't won't doesn't",
        "Buffer overflow (CWE-120) in the TIFF decoder!",
        "脆弱性 情報 Σίσυφος ΑΣ",
    ];
    let mut pre = Preprocessor::new();
    for text in texts {
        let mut terms = Vec::new();
        pre.for_each_term(text, |t| terms.push(t.to_owned()));
        assert_eq!(terms, preprocess(text), "input {text:?}");
    }
}

#[test]
fn corpus_pipeline_is_bit_identical_to_per_call_pipeline() {
    // PreprocessedCorpus + fit_corpus + encode_corpus must reproduce the
    // per-call preprocess/add_document/encode composition exactly.
    let texts = [
        DESCRIPTION,
        "Buffer overflow in the kernel driver causes local denial of service.",
        "Cross-site scripting in the search form.",
    ];
    let corpus = PreprocessedCorpus::build(texts.iter().copied(), 0x5e17);
    let enc = SentenceEncoder::new(128, 0x5e17).with_idf(Idf::fit_corpus(&corpus));
    let batch = enc.encode_corpus(&corpus);
    let per_call = SentenceEncoder::new(128, 0x5e17).with_idf_corpus(texts.iter().copied());
    for (i, text) in texts.iter().enumerate() {
        assert_eq!(batch[i], per_call.encode(text), "doc {i}");
    }
}

#[test]
fn distances_match_known_values() {
    // The textbook pair.
    assert_eq!(levenshtein("kitten", "sitting"), 3);
    // The paper's §4.2 example: a one-character vendor typo.
    assert_eq!(levenshtein("schneider_electric", "chneider_electric"), 1);
    assert_eq!(
        longest_common_substring_len("schneider_electric", "chneider_electric"),
        17
    );
    assert_eq!(levenshtein("", "abc"), 3);
    assert_eq!(levenshtein("abc", "abc"), 0);
    assert_eq!(longest_common_substring_len("abcdef", "zabcy"), 3);
    assert!((trigram_jaccard("microsoft", "microsoft") - 1.0).abs() < 1e-12);
}

#[test]
fn distances_are_symmetric_on_fixed_corpus() {
    let names = [
        "microsoft",
        "micro_soft",
        "schneider_electric",
        "lan_management_system",
        "lms_manager",
        "hp",
    ];
    for a in names {
        for b in names {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert_eq!(
                longest_common_substring_len(a, b),
                longest_common_substring_len(b, a)
            );
            let j_ab = trigram_jaccard(a, b);
            let j_ba = trigram_jaccard(b, a);
            assert!((j_ab - j_ba).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
