//! # nvd-model
//!
//! Data model for National Vulnerability Database (NVD) entries, shared by
//! every crate in the `nvd-clean` workspace — the Rust reproduction of
//! *"Cleaning the NVD: Comprehensive Quality Assessment, Improvements, and
//! Analyses"* (Anwar et al., DSN 2021).
//!
//! The model covers the entry fields the paper's §3 inventories:
//!
//! * [`cve::CveId`] — the unique CVE identifier;
//! * [`date::Date`] — civil-date arithmetic for publication/disclosure dates;
//! * [`cwe`] — CWE vulnerability-type labels and a curated catalog;
//! * [`metrics`] — CVSS v2/v3 base-metric vectors and severity bands (Table 1);
//! * [`cpe`] — affected vendor/product names and CPE URIs;
//! * [`entry::CveEntry`] — the full record, with descriptions and references;
//! * [`database::Database`] — an indexed collection with aggregate statistics;
//! * [`feed`] — (de)serialization of the NVD JSON feed format.
//!
//! ## Example
//!
//! ```
//! use nvd_model::prelude::*;
//!
//! let mut entry = CveEntry::new("CVE-2011-0700".parse()?, "2011-03-14".parse()?);
//! entry.references.push(Reference::new("https://www.securityfocus.com/bid/46249"));
//! let db = Database::from_entries([entry]);
//! assert_eq!(db.stats().cve_count, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod cpe;
pub mod cve;
pub mod cwe;
pub mod database;
pub mod date;
pub mod entry;
pub mod feed;
pub mod metrics;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::cpe::{CpeName, CpePart, CpeUri, ProductName, VendorName};
    pub use crate::cve::CveId;
    pub use crate::cwe::{CweCatalog, CweId, CweLabel};
    pub use crate::database::{Database, DatabaseStats};
    pub use crate::date::{Date, Weekday};
    pub use crate::entry::{
        CveEntry, CvssV2Record, CvssV3Record, Description, DescriptionSource, Reference,
    };
    pub use crate::metrics::{CvssV2Vector, CvssV3Vector, Severity};
}
