//! CWE (Common Weakness Enumeration) identifiers, labels and catalog.
//!
//! The NVD assigns each CVE a vulnerability type from the CWE classification.
//! The paper (§4.4) observes three degenerate labels alongside real IDs:
//! `NVD-CWE-Other`, `NVD-CWE-noinfo`, and missing values; [`CweLabel`] models
//! all four states. [`CweCatalog`] carries a curated subset of the real CWE
//! list (the IDs that dominate NVD assignments, including every type in the
//! paper's Table 10) and is what description-mined IDs are validated against.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Error returned when a CWE identifier string is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCweError {
    input: String,
}

impl fmt::Display for ParseCweError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CWE identifier: {:?}", self.input)
    }
}

impl std::error::Error for ParseCweError {}

/// A CWE identifier such as `CWE-89`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CweId(u32);

impl CweId {
    /// Creates an identifier from its numeric part.
    pub fn new(num: u32) -> Self {
        Self(num)
    }

    /// The numeric part of the identifier (the `89` in `CWE-89`).
    pub fn number(self) -> u32 {
        self.0
    }
}

impl fmt::Display for CweId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CWE-{}", self.0)
    }
}

impl FromStr for CweId {
    type Err = ParseCweError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseCweError {
            input: s.to_owned(),
        };
        let num = s.strip_prefix("CWE-").ok_or_else(err)?;
        if num.is_empty() || num.len() > 5 || !num.bytes().all(|b| b.is_ascii_digit()) {
            return Err(err());
        }
        Ok(Self(num.parse().map_err(|_| err())?))
    }
}

impl Serialize for CweId {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for CweId {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(D::Error::custom)
    }
}

/// The vulnerability-type label attached to an NVD entry.
///
/// Mirrors the four states the paper quantifies: a concrete CWE ID, the two
/// placeholder labels, and a missing assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CweLabel {
    /// A concrete CWE identifier.
    Specific(CweId),
    /// `NVD-CWE-Other`: categorised, but not with a specific CWE.
    Other,
    /// `NVD-CWE-noinfo`: insufficient information to categorise.
    NoInfo,
    /// No label assigned at all.
    Unassigned,
}

impl CweLabel {
    /// Returns the concrete ID if this label names one.
    pub fn specific(self) -> Option<CweId> {
        match self {
            CweLabel::Specific(id) => Some(id),
            _ => None,
        }
    }

    /// Whether the label fails to name a concrete weakness (the ≈31% of NVD
    /// entries the paper reports as Other/noinfo/unassigned).
    pub fn is_degenerate(self) -> bool {
        !matches!(self, CweLabel::Specific(_))
    }

    /// The string NVD uses for this label in its feeds.
    pub fn feed_str(self) -> String {
        match self {
            CweLabel::Specific(id) => id.to_string(),
            CweLabel::Other => "NVD-CWE-Other".to_owned(),
            CweLabel::NoInfo => "NVD-CWE-noinfo".to_owned(),
            CweLabel::Unassigned => String::new(),
        }
    }

    /// Parses the NVD feed representation (empty string = unassigned).
    pub fn from_feed_str(s: &str) -> Result<Self, ParseCweError> {
        match s {
            "" => Ok(CweLabel::Unassigned),
            "NVD-CWE-Other" => Ok(CweLabel::Other),
            "NVD-CWE-noinfo" => Ok(CweLabel::NoInfo),
            other => other.parse().map(CweLabel::Specific),
        }
    }
}

impl fmt::Display for CweLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CweLabel::Unassigned => f.write_str("(unassigned)"),
            other => f.write_str(&other.feed_str()),
        }
    }
}

/// One catalog record: a CWE ID, its official name, and the short label the
/// paper's Table 10 uses for it (if any).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CweRecord {
    pub id: CweId,
    /// Official CWE name, e.g. "Improper Neutralization of Special Elements
    /// used in an SQL Command ('SQL Injection')".
    pub name: String,
    /// Short analyst-facing label, e.g. "SQL Injection".
    pub short_name: String,
}

/// Curated CWE catalog used for validating mined IDs and naming types.
///
/// ```
/// use nvd_model::cwe::{CweCatalog, CweId};
/// let catalog = CweCatalog::builtin();
/// assert!(catalog.contains(CweId::new(89)));
/// assert_eq!(catalog.short_name(CweId::new(119)).unwrap(), "Buffer Overflow");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CweCatalog {
    records: BTreeMap<CweId, CweRecord>,
}

impl CweCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in catalog: the CWE IDs that dominate NVD assignments,
    /// including every type referenced by the paper.
    pub fn builtin() -> Self {
        let mut catalog = Self::new();
        for &(num, name, short) in BUILTIN_CWES {
            catalog.insert(CweRecord {
                id: CweId::new(num),
                name: name.to_owned(),
                short_name: short.to_owned(),
            });
        }
        catalog
    }

    /// Inserts or replaces a record.
    pub fn insert(&mut self, record: CweRecord) {
        self.records.insert(record.id, record);
    }

    /// Whether `id` is in the catalog.
    pub fn contains(&self, id: CweId) -> bool {
        self.records.contains_key(&id)
    }

    /// Looks up a record.
    pub fn get(&self, id: CweId) -> Option<&CweRecord> {
        self.records.get(&id)
    }

    /// The short, analyst-facing name for `id`.
    pub fn short_name(&self, id: CweId) -> Option<&str> {
        self.records.get(&id).map(|r| r.short_name.as_str())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over records in ID order.
    pub fn iter(&self) -> impl Iterator<Item = &CweRecord> {
        self.records.values()
    }

    /// All IDs in the catalog, in order.
    pub fn ids(&self) -> impl Iterator<Item = CweId> + '_ {
        self.records.keys().copied()
    }
}

/// (number, official name, short name). Sourced from the public CWE list;
/// short names follow the paper's Table 10 footnotes where it names a type.
const BUILTIN_CWES: &[(u32, &str, &str)] = &[
    (16, "Configuration", "Configuration"),
    (17, "DEPRECATED: Code", "Code Issue"),
    (19, "Data Processing Errors", "Data Processing"),
    (20, "Improper Input Validation", "Input Validation"),
    (21, "DEPRECATED: Pathname Traversal and Equivalence Errors", "Pathname Errors"),
    (22, "Improper Limitation of a Pathname to a Restricted Directory ('Path Traversal')", "Path Traversal"),
    (59, "Improper Link Resolution Before File Access ('Link Following')", "Link Following"),
    (74, "Improper Neutralization of Special Elements in Output Used by a Downstream Component ('Injection')", "Injection"),
    (77, "Improper Neutralization of Special Elements used in a Command ('Command Injection')", "Command"),
    (78, "Improper Neutralization of Special Elements used in an OS Command ('OS Command Injection')", "OS Command Injection"),
    (79, "Improper Neutralization of Input During Web Page Generation ('Cross-site Scripting')", "Cross-Site Scripting"),
    (88, "Improper Neutralization of Argument Delimiters in a Command ('Argument Injection')", "Argument Injection"),
    (89, "Improper Neutralization of Special Elements used in an SQL Command ('SQL Injection')", "SQL Injection"),
    (90, "Improper Neutralization of Special Elements used in an LDAP Query ('LDAP Injection')", "LDAP Injection"),
    (91, "XML Injection (aka Blind XPath Injection)", "XML Injection"),
    (93, "Improper Neutralization of CRLF Sequences ('CRLF Injection')", "CRLF Injection"),
    (94, "Improper Control of Generation of Code ('Code Injection')", "Code Injection"),
    (98, "Improper Control of Filename for Include/Require Statement in PHP Program ('PHP Remote File Inclusion')", "File Inclusion"),
    (113, "Improper Neutralization of CRLF Sequences in HTTP Headers ('HTTP Response Splitting')", "Response Splitting"),
    (116, "Improper Encoding or Escaping of Output", "Output Encoding"),
    (119, "Improper Restriction of Operations within the Bounds of a Memory Buffer", "Buffer Overflow"),
    (120, "Buffer Copy without Checking Size of Input ('Classic Buffer Overflow')", "Classic Overflow"),
    (125, "Out-of-bounds Read", "Buffer Over Read"),
    (129, "Improper Validation of Array Index", "Array Index"),
    (131, "Incorrect Calculation of Buffer Size", "Buffer Size Calc"),
    (134, "Use of Externally-Controlled Format String", "Format String"),
    (184, "Incomplete List of Disallowed Inputs", "Incomplete Denylist"),
    (189, "Numeric Errors", "Numerical Error"),
    (190, "Integer Overflow or Wraparound", "Integer Overflow"),
    (191, "Integer Underflow (Wrap or Wraparound)", "Integer Underflow"),
    (193, "Off-by-one Error", "Off-by-one"),
    (199, "Information Management Errors", "Information Management"),
    (200, "Exposure of Sensitive Information to an Unauthorized Actor", "Information Exposure"),
    (201, "Insertion of Sensitive Information Into Sent Data", "Data Insertion"),
    (203, "Observable Discrepancy", "Observable Discrepancy"),
    (209, "Generation of Error Message Containing Sensitive Information", "Error Message Leak"),
    (254, "7PK - Security Features", "Security Features"),
    (255, "Credentials Management Errors", "Credentials"),
    (259, "Use of Hard-coded Password", "Hard-coded Password"),
    (264, "Permissions, Privileges, and Access Controls", "Permission Management"),
    (269, "Improper Privilege Management", "Privilege Management"),
    (273, "Improper Check for Dropped Privileges", "Dropped Privileges"),
    (275, "Permission Issues", "Permission Issues"),
    (276, "Incorrect Default Permissions", "Default Permissions"),
    (281, "Improper Preservation of Permissions", "Permission Preservation"),
    (284, "Improper Access Control", "Access Control"),
    (285, "Improper Authorization", "Improper Authorization"),
    (287, "Improper Authentication", "Improper Authentication"),
    (290, "Authentication Bypass by Spoofing", "Auth Bypass Spoofing"),
    (294, "Authentication Bypass by Capture-replay", "Capture Replay"),
    (295, "Improper Certificate Validation", "Certificate Validation"),
    (297, "Improper Validation of Certificate with Host Mismatch", "Cert Host Mismatch"),
    (306, "Missing Authentication for Critical Function", "Missing Authentication"),
    (307, "Improper Restriction of Excessive Authentication Attempts", "Brute Force"),
    (310, "Cryptographic Issues", "Cryptographic Issues"),
    (311, "Missing Encryption of Sensitive Data", "Missing Encryption"),
    (312, "Cleartext Storage of Sensitive Information", "Cleartext Storage"),
    (319, "Cleartext Transmission of Sensitive Information", "Cleartext Transmission"),
    (320, "Key Management Errors", "Key Management"),
    (326, "Inadequate Encryption Strength", "Weak Encryption"),
    (327, "Use of a Broken or Risky Cryptographic Algorithm", "Broken Crypto"),
    (330, "Use of Insufficiently Random Values", "Insufficient Randomness"),
    (331, "Insufficient Entropy", "Insufficient Entropy"),
    (338, "Use of Cryptographically Weak Pseudo-Random Number Generator (PRNG)", "Weak PRNG"),
    (345, "Insufficient Verification of Data Authenticity", "Data Authenticity"),
    (346, "Origin Validation Error", "Origin Validation"),
    (352, "Cross-Site Request Forgery (CSRF)", "Cross-Site Request Forgery"),
    (354, "Improper Validation of Integrity Check Value", "Integrity Check"),
    (358, "Improperly Implemented Security Check for Standard", "Security Check"),
    (362, "Concurrent Execution using Shared Resource with Improper Synchronization ('Race Condition')", "Race Condition"),
    (367, "Time-of-check Time-of-use (TOCTOU) Race Condition", "TOCTOU"),
    (369, "Divide By Zero", "Divide By Zero"),
    (384, "Session Fixation", "Session Fixation"),
    (388, "7PK - Errors", "Error Handling"),
    (399, "Resource Management Errors", "Resource Management"),
    (400, "Uncontrolled Resource Consumption", "Resource Consumption"),
    (401, "Missing Release of Memory after Effective Lifetime", "Memory Leak"),
    (404, "Improper Resource Shutdown or Release", "Resource Shutdown"),
    (415, "Double Free", "Double Free"),
    (416, "Use After Free", "Use-after-Free"),
    (426, "Untrusted Search Path", "Untrusted Search Path"),
    (427, "Uncontrolled Search Path Element", "Search Path Element"),
    (428, "Unquoted Search Path or Element", "Unquoted Path"),
    (434, "Unrestricted Upload of File with Dangerous Type", "File Upload"),
    (436, "Interpretation Conflict", "Interpretation Conflict"),
    (441, "Unintended Proxy or Intermediary ('Confused Deputy')", "Confused Deputy"),
    (444, "Inconsistent Interpretation of HTTP Requests ('HTTP Request Smuggling')", "Request Smuggling"),
    (459, "Incomplete Cleanup", "Incomplete Cleanup"),
    (476, "NULL Pointer Dereference", "NULL Dereference"),
    (494, "Download of Code Without Integrity Check", "Unverified Download"),
    (502, "Deserialization of Untrusted Data", "Unsafe Deserialization"),
    (521, "Weak Password Requirements", "Weak Password"),
    (522, "Insufficiently Protected Credentials", "Unprotected Credentials"),
    (532, "Insertion of Sensitive Information into Log File", "Log Information Leak"),
    (538, "Insertion of Sensitive Information into Externally-Accessible File or Directory", "File Information Leak"),
    (552, "Files or Directories Accessible to External Parties", "Exposed Files"),
    (601, "URL Redirection to Untrusted Site ('Open Redirect')", "Open Redirect"),
    (610, "Externally Controlled Reference to a Resource in Another Sphere", "External Reference"),
    (611, "Improper Restriction of XML External Entity Reference", "XXE"),
    (613, "Insufficient Session Expiration", "Session Expiration"),
    (617, "Reachable Assertion", "Reachable Assertion"),
    (640, "Weak Password Recovery Mechanism for Forgotten Password", "Password Recovery"),
    (662, "Improper Synchronization", "Synchronization"),
    (665, "Improper Initialization", "Initialization"),
    (668, "Exposure of Resource to Wrong Sphere", "Resource Exposure"),
    (669, "Incorrect Resource Transfer Between Spheres", "Resource Transfer"),
    (670, "Always-Incorrect Control Flow Implementation", "Control Flow"),
    (672, "Operation on a Resource after Expiration or Release", "Expired Resource"),
    (674, "Uncontrolled Recursion", "Uncontrolled Recursion"),
    (682, "Incorrect Calculation", "Incorrect Calculation"),
    (693, "Protection Mechanism Failure", "Protection Failure"),
    (704, "Incorrect Type Conversion or Cast", "Type Confusion"),
    (706, "Use of Incorrectly-Resolved Name or Reference", "Name Resolution"),
    (732, "Incorrect Permission Assignment for Critical Resource", "Permission Assignment"),
    (749, "Exposed Dangerous Method or Function", "Exposed Method"),
    (754, "Improper Check for Unusual or Exceptional Conditions", "Exceptional Conditions"),
    (755, "Improper Handling of Exceptional Conditions", "Exception Handling"),
    (769, "DEPRECATED: Uncontrolled File Descriptor Consumption", "FD Consumption"),
    (772, "Missing Release of Resource after Effective Lifetime", "Resource Release"),
    (776, "Improper Restriction of Recursive Entity References in DTDs ('XML Entity Expansion')", "Entity Expansion"),
    (787, "Out-of-bounds Write", "Out-of-bounds Write"),
    (798, "Use of Hard-coded Credentials", "Hard-coded Credentials"),
    (822, "Untrusted Pointer Dereference", "Untrusted Pointer"),
    (824, "Access of Uninitialized Pointer", "Uninitialized Pointer"),
    (829, "Inclusion of Functionality from Untrusted Control Sphere", "Untrusted Inclusion"),
    (834, "Excessive Iteration", "Excessive Iteration"),
    (835, "Loop with Unreachable Exit Condition ('Infinite Loop')", "Infinite Loop"),
    (843, "Access of Resource Using Incompatible Type ('Type Confusion')", "Incompatible Type"),
    (862, "Missing Authorization", "Missing Authorization"),
    (863, "Incorrect Authorization", "Incorrect Authorization"),
    (908, "Use of Uninitialized Resource", "Uninitialized Resource"),
    (909, "Missing Initialization of Resource", "Missing Initialization"),
    (916, "Use of Password Hash With Insufficient Computational Effort", "Weak Hash"),
    (918, "Server-Side Request Forgery (SSRF)", "SSRF"),
    (920, "Improper Restriction of Power Consumption", "Power Consumption"),
    (922, "Insecure Storage of Sensitive Information", "Insecure Storage"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cwe_id_parse_display_roundtrip() {
        let id: CweId = "CWE-89".parse().unwrap();
        assert_eq!(id, CweId::new(89));
        assert_eq!(id.to_string(), "CWE-89");
    }

    #[test]
    fn cwe_id_rejects_malformed() {
        for bad in ["CWE89", "cwe-89", "CWE-", "CWE-12x", "CWE-123456", ""] {
            assert!(bad.parse::<CweId>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn label_feed_roundtrip() {
        let labels = [
            CweLabel::Specific(CweId::new(835)),
            CweLabel::Other,
            CweLabel::NoInfo,
            CweLabel::Unassigned,
        ];
        for label in labels {
            let s = label.feed_str();
            assert_eq!(CweLabel::from_feed_str(&s).unwrap(), label);
        }
    }

    #[test]
    fn label_degeneracy() {
        assert!(!CweLabel::Specific(CweId::new(79)).is_degenerate());
        assert!(CweLabel::Other.is_degenerate());
        assert!(CweLabel::NoInfo.is_degenerate());
        assert!(CweLabel::Unassigned.is_degenerate());
    }

    #[test]
    fn builtin_catalog_has_paper_types() {
        let catalog = CweCatalog::builtin();
        // Every type in the paper's Table 10 footnotes.
        let expected = [
            (119, "Buffer Overflow"),
            (89, "SQL Injection"),
            (264, "Permission Management"),
            (20, "Input Validation"),
            (94, "Code Injection"),
            (399, "Resource Management"),
            (416, "Use-after-Free"),
            (189, "Numerical Error"),
            (22, "Path Traversal"),
            (285, "Improper Authorization"),
            (284, "Access Control"),
            (255, "Credentials"),
            (77, "Command"),
            (200, "Information Exposure"),
            (190, "Integer Overflow"),
            (352, "Cross-Site Request Forgery"),
            (125, "Buffer Over Read"),
            (310, "Cryptographic Issues"),
            (835, "Infinite Loop"),
        ];
        for (num, short) in expected {
            assert_eq!(
                catalog.short_name(CweId::new(num)),
                Some(short),
                "CWE-{num}"
            );
        }
        assert!(catalog.len() >= 120);
    }

    #[test]
    fn catalog_lookup_and_insert() {
        let mut catalog = CweCatalog::new();
        assert!(catalog.is_empty());
        assert!(!catalog.contains(CweId::new(1)));
        catalog.insert(CweRecord {
            id: CweId::new(1),
            name: "Test".into(),
            short_name: "T".into(),
        });
        assert!(catalog.contains(CweId::new(1)));
        assert_eq!(catalog.get(CweId::new(1)).unwrap().short_name, "T");
        assert_eq!(catalog.ids().count(), 1);
    }
}
