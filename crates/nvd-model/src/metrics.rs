//! CVSS v2 / v3.0 metric enumerations, vector strings, and severity levels.
//!
//! This module holds the *data model* for CVSS: the base-metric enums, the
//! vector types that group them, the canonical vector-string syntax, and the
//! severity bands of the paper's Table 1. The scoring *equations* live in the
//! `cvss` crate, which builds on these types.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Error returned when a CVSS vector string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVectorError {
    msg: String,
}

impl ParseVectorError {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for ParseVectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CVSS vector: {}", self.msg)
    }
}

impl std::error::Error for ParseVectorError {}

macro_rules! metric_enum {
    (
        $(#[$meta:meta])*
        $name:ident { $( $(#[$vmeta:meta])* $variant:ident => $abbr:literal ),+ $(,)? }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub enum $name {
            $( $(#[$vmeta])* $variant, )+
        }

        impl $name {
            /// All variants, in specification order.
            pub const ALL: &'static [$name] = &[ $( $name::$variant, )+ ];

            /// The single- or double-letter abbreviation used in vector strings.
            pub fn abbrev(self) -> &'static str {
                match self {
                    $( $name::$variant => $abbr, )+
                }
            }

            /// Parses the vector-string abbreviation.
            pub fn from_abbrev(s: &str) -> Option<Self> {
                match s {
                    $( $abbr => Some($name::$variant), )+
                    _ => None,
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.abbrev())
            }
        }
    };
}

// ---------------------------------------------------------------------------
// CVSS v2 base metrics
// ---------------------------------------------------------------------------

metric_enum! {
    /// CVSS v2 Access Vector (AV).
    AccessVectorV2 {
        /// Requires local access.
        Local => "L",
        /// Requires access to the adjacent network.
        AdjacentNetwork => "A",
        /// Remotely exploitable.
        Network => "N",
    }
}

metric_enum! {
    /// CVSS v2 Access Complexity (AC).
    AccessComplexityV2 {
        /// Specialised access conditions exist.
        High => "H",
        /// Somewhat specialised conditions.
        Medium => "M",
        /// No specialised conditions.
        Low => "L",
    }
}

metric_enum! {
    /// CVSS v2 Authentication (Au).
    AuthenticationV2 {
        /// Two or more instances of authentication required.
        Multiple => "M",
        /// One instance of authentication required.
        Single => "S",
        /// No authentication required.
        None => "N",
    }
}

metric_enum! {
    /// CVSS v2 impact metric, used for Confidentiality, Integrity and
    /// Availability (C/I/A).
    ImpactV2 {
        /// No impact.
        None => "N",
        /// Partial impact.
        Partial => "P",
        /// Complete impact.
        Complete => "C",
    }
}

/// A complete CVSS v2 base vector, e.g. `AV:N/AC:L/Au:N/C:P/I:P/A:P`.
///
/// ```
/// use nvd_model::metrics::CvssV2Vector;
/// let v: CvssV2Vector = "AV:N/AC:L/Au:N/C:P/I:P/A:P".parse()?;
/// assert_eq!(v.to_string(), "AV:N/AC:L/Au:N/C:P/I:P/A:P");
/// # Ok::<(), nvd_model::metrics::ParseVectorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CvssV2Vector {
    pub access_vector: AccessVectorV2,
    pub access_complexity: AccessComplexityV2,
    pub authentication: AuthenticationV2,
    pub confidentiality: ImpactV2,
    pub integrity: ImpactV2,
    pub availability: ImpactV2,
}

impl CvssV2Vector {
    /// Constructs a vector from its six base metrics in specification order.
    pub fn new(
        access_vector: AccessVectorV2,
        access_complexity: AccessComplexityV2,
        authentication: AuthenticationV2,
        confidentiality: ImpactV2,
        integrity: ImpactV2,
        availability: ImpactV2,
    ) -> Self {
        Self {
            access_vector,
            access_complexity,
            authentication,
            confidentiality,
            integrity,
            availability,
        }
    }

    /// Iterates over the three C/I/A impact metrics.
    pub fn impacts(&self) -> [ImpactV2; 3] {
        [self.confidentiality, self.integrity, self.availability]
    }
}

impl fmt::Display for CvssV2Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AV:{}/AC:{}/Au:{}/C:{}/I:{}/A:{}",
            self.access_vector,
            self.access_complexity,
            self.authentication,
            self.confidentiality,
            self.integrity,
            self.availability
        )
    }
}

impl FromStr for CvssV2Vector {
    type Err = ParseVectorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut av = None;
        let mut ac = None;
        let mut au = None;
        let mut c = None;
        let mut i = None;
        let mut a = None;
        for part in s.split('/') {
            let (key, val) = part
                .split_once(':')
                .ok_or_else(|| ParseVectorError::new(format!("component {part:?}")))?;
            let dup = |k: &str| ParseVectorError::new(format!("duplicate metric {k}"));
            match key {
                "AV" => {
                    if av
                        .replace(
                            AccessVectorV2::from_abbrev(val).ok_or_else(|| {
                                ParseVectorError::new(format!("AV value {val:?}"))
                            })?,
                        )
                        .is_some()
                    {
                        return Err(dup("AV"));
                    }
                }
                "AC" => {
                    if ac
                        .replace(
                            AccessComplexityV2::from_abbrev(val).ok_or_else(|| {
                                ParseVectorError::new(format!("AC value {val:?}"))
                            })?,
                        )
                        .is_some()
                    {
                        return Err(dup("AC"));
                    }
                }
                "Au" => {
                    if au
                        .replace(
                            AuthenticationV2::from_abbrev(val).ok_or_else(|| {
                                ParseVectorError::new(format!("Au value {val:?}"))
                            })?,
                        )
                        .is_some()
                    {
                        return Err(dup("Au"));
                    }
                }
                "C" | "I" | "A" => {
                    let imp = ImpactV2::from_abbrev(val)
                        .ok_or_else(|| ParseVectorError::new(format!("{key} value {val:?}")))?;
                    let slot = match key {
                        "C" => &mut c,
                        "I" => &mut i,
                        _ => &mut a,
                    };
                    if slot.replace(imp).is_some() {
                        return Err(dup(key));
                    }
                }
                _ => return Err(ParseVectorError::new(format!("unknown metric {key:?}"))),
            }
        }
        Ok(Self {
            access_vector: av.ok_or_else(|| ParseVectorError::new("missing AV"))?,
            access_complexity: ac.ok_or_else(|| ParseVectorError::new("missing AC"))?,
            authentication: au.ok_or_else(|| ParseVectorError::new("missing Au"))?,
            confidentiality: c.ok_or_else(|| ParseVectorError::new("missing C"))?,
            integrity: i.ok_or_else(|| ParseVectorError::new("missing I"))?,
            availability: a.ok_or_else(|| ParseVectorError::new("missing A"))?,
        })
    }
}

// ---------------------------------------------------------------------------
// CVSS v3.0 base metrics
// ---------------------------------------------------------------------------

metric_enum! {
    /// CVSS v3.0 Attack Vector (AV). v3 splits v2's `Local` into `Local` and
    /// `Physical`, the refinement the paper highlights in §4.3.
    AttackVectorV3 {
        /// Physically present attacker.
        Physical => "P",
        /// Local shell / logged-in attacker.
        Local => "L",
        /// Adjacent network (same broadcast/collision domain).
        Adjacent => "A",
        /// Remotely exploitable across the network.
        Network => "N",
    }
}

metric_enum! {
    /// CVSS v3.0 Attack Complexity (AC).
    AttackComplexityV3 {
        /// Specialised conditions must exist.
        High => "H",
        /// No specialised conditions.
        Low => "L",
    }
}

metric_enum! {
    /// CVSS v3.0 Privileges Required (PR).
    PrivilegesRequiredV3 {
        /// Administrative privileges required.
        High => "H",
        /// Basic user privileges required.
        Low => "L",
        /// No privileges required.
        None => "N",
    }
}

metric_enum! {
    /// CVSS v3.0 User Interaction (UI) — split out of v2's access complexity.
    UserInteractionV3 {
        /// A user must take some action.
        Required => "R",
        /// Exploitable without user participation.
        None => "N",
    }
}

metric_enum! {
    /// CVSS v3.0 Scope (S) — new in v3; `Changed` means the vulnerability
    /// impacts resources beyond the exploitable component, which the paper
    /// credits for much of v3's skew towards higher severities.
    ScopeV3 {
        /// Impact confined to the vulnerable component.
        Unchanged => "U",
        /// Impact reaches other components.
        Changed => "C",
    }
}

metric_enum! {
    /// CVSS v3.0 impact metric for Confidentiality, Integrity, Availability.
    ImpactV3 {
        /// No impact.
        None => "N",
        /// Limited impact.
        Low => "L",
        /// Total impact.
        High => "H",
    }
}

/// A complete CVSS v3.0 base vector,
/// e.g. `CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H`.
///
/// ```
/// use nvd_model::metrics::CvssV3Vector;
/// let v: CvssV3Vector = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H".parse()?;
/// assert_eq!(v.scope, nvd_model::metrics::ScopeV3::Unchanged);
/// # Ok::<(), nvd_model::metrics::ParseVectorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CvssV3Vector {
    pub attack_vector: AttackVectorV3,
    pub attack_complexity: AttackComplexityV3,
    pub privileges_required: PrivilegesRequiredV3,
    pub user_interaction: UserInteractionV3,
    pub scope: ScopeV3,
    pub confidentiality: ImpactV3,
    pub integrity: ImpactV3,
    pub availability: ImpactV3,
}

impl CvssV3Vector {
    /// Constructs a vector from its eight base metrics in specification order.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        attack_vector: AttackVectorV3,
        attack_complexity: AttackComplexityV3,
        privileges_required: PrivilegesRequiredV3,
        user_interaction: UserInteractionV3,
        scope: ScopeV3,
        confidentiality: ImpactV3,
        integrity: ImpactV3,
        availability: ImpactV3,
    ) -> Self {
        Self {
            attack_vector,
            attack_complexity,
            privileges_required,
            user_interaction,
            scope,
            confidentiality,
            integrity,
            availability,
        }
    }

    /// Iterates over the three C/I/A impact metrics.
    pub fn impacts(&self) -> [ImpactV3; 3] {
        [self.confidentiality, self.integrity, self.availability]
    }
}

impl fmt::Display for CvssV3Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CVSS:3.0/AV:{}/AC:{}/PR:{}/UI:{}/S:{}/C:{}/I:{}/A:{}",
            self.attack_vector,
            self.attack_complexity,
            self.privileges_required,
            self.user_interaction,
            self.scope,
            self.confidentiality,
            self.integrity,
            self.availability
        )
    }
}

impl FromStr for CvssV3Vector {
    type Err = ParseVectorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .strip_prefix("CVSS:3.0/")
            .or_else(|| s.strip_prefix("CVSS:3.1/"))
            .ok_or_else(|| ParseVectorError::new("missing CVSS:3.x prefix"))?;
        let mut fields: [Option<&str>; 8] = [None; 8];
        const KEYS: [&str; 8] = ["AV", "AC", "PR", "UI", "S", "C", "I", "A"];
        for part in body.split('/') {
            let (key, val) = part
                .split_once(':')
                .ok_or_else(|| ParseVectorError::new(format!("component {part:?}")))?;
            let idx = KEYS
                .iter()
                .position(|k| *k == key)
                .ok_or_else(|| ParseVectorError::new(format!("unknown metric {key:?}")))?;
            if fields[idx].replace(val).is_some() {
                return Err(ParseVectorError::new(format!("duplicate metric {key}")));
            }
        }
        let take = |idx: usize| -> Result<&str, ParseVectorError> {
            fields[idx].ok_or_else(|| ParseVectorError::new(format!("missing {}", KEYS[idx])))
        };
        let bad = |key: &str, val: &str| ParseVectorError::new(format!("{key} value {val:?}"));
        Ok(Self {
            attack_vector: AttackVectorV3::from_abbrev(take(0)?)
                .ok_or_else(|| bad("AV", fields[0].unwrap_or("")))?,
            attack_complexity: AttackComplexityV3::from_abbrev(take(1)?)
                .ok_or_else(|| bad("AC", fields[1].unwrap_or("")))?,
            privileges_required: PrivilegesRequiredV3::from_abbrev(take(2)?)
                .ok_or_else(|| bad("PR", fields[2].unwrap_or("")))?,
            user_interaction: UserInteractionV3::from_abbrev(take(3)?)
                .ok_or_else(|| bad("UI", fields[3].unwrap_or("")))?,
            scope: ScopeV3::from_abbrev(take(4)?)
                .ok_or_else(|| bad("S", fields[4].unwrap_or("")))?,
            confidentiality: ImpactV3::from_abbrev(take(5)?)
                .ok_or_else(|| bad("C", fields[5].unwrap_or("")))?,
            integrity: ImpactV3::from_abbrev(take(6)?)
                .ok_or_else(|| bad("I", fields[6].unwrap_or("")))?,
            availability: ImpactV3::from_abbrev(take(7)?)
                .ok_or_else(|| bad("A", fields[7].unwrap_or("")))?,
        })
    }
}

// ---------------------------------------------------------------------------
// Severity bands (paper Table 1)
// ---------------------------------------------------------------------------

/// Qualitative severity level.
///
/// v2 defines Low/Medium/High; v3.0 adds `None` (score 0.0) and `Critical`
/// (9.0–10.0). The paper's Table 1 gives the thresholds implemented by
/// [`Severity::from_v2_score`] and [`Severity::from_v3_score`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// v3 only: score exactly 0.0.
    None,
    Low,
    Medium,
    High,
    /// v3 only: score in 9.0–10.0.
    Critical,
}

impl Severity {
    /// The four levels a v2 score can take (no `None`, no `Critical`).
    pub const V2_LEVELS: [Severity; 3] = [Severity::Low, Severity::Medium, Severity::High];
    /// The four non-`None` levels of v3, as used throughout the paper's tables.
    pub const V3_LEVELS: [Severity; 4] = [
        Severity::Low,
        Severity::Medium,
        Severity::High,
        Severity::Critical,
    ];

    /// Banding for CVSS v2 scores: L 0.0–3.9, M 4.0–6.9, H 7.0–10.0.
    ///
    /// # Panics
    ///
    /// Panics if `score` is not within `0.0..=10.0` (scores are produced by
    /// the scoring equations, which guarantee the range).
    pub fn from_v2_score(score: f64) -> Self {
        assert!(
            (0.0..=10.0).contains(&score),
            "v2 score {score} out of range"
        );
        if score < 4.0 {
            Severity::Low
        } else if score < 7.0 {
            Severity::Medium
        } else {
            Severity::High
        }
    }

    /// Banding for CVSS v3 scores: None 0.0, L 0.1–3.9, M 4.0–6.9, H 7.0–8.9,
    /// C 9.0–10.0.
    ///
    /// # Panics
    ///
    /// Panics if `score` is not within `0.0..=10.0`.
    pub fn from_v3_score(score: f64) -> Self {
        assert!(
            (0.0..=10.0).contains(&score),
            "v3 score {score} out of range"
        );
        if score == 0.0 {
            Severity::None
        } else if score < 4.0 {
            Severity::Low
        } else if score < 7.0 {
            Severity::Medium
        } else if score < 9.0 {
            Severity::High
        } else {
            Severity::Critical
        }
    }

    /// One-letter label used in the paper's tables (`L`/`M`/`H`/`C`; `-` for none).
    pub fn abbrev(self) -> &'static str {
        match self {
            Severity::None => "-",
            Severity::Low => "L",
            Severity::Medium => "M",
            Severity::High => "H",
            Severity::Critical => "C",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Severity::None => "None",
            Severity::Low => "Low",
            Severity::Medium => "Medium",
            Severity::High => "High",
            Severity::Critical => "Critical",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v2_vector_roundtrip() {
        let s = "AV:N/AC:L/Au:N/C:P/I:P/A:P";
        let v: CvssV2Vector = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
        assert_eq!(v.access_vector, AccessVectorV2::Network);
        assert_eq!(v.impacts(), [ImpactV2::Partial; 3]);
    }

    #[test]
    fn v2_vector_rejects_malformed() {
        for bad in [
            "AV:N/AC:L/Au:N/C:P/I:P",          // missing A
            "AV:X/AC:L/Au:N/C:P/I:P/A:P",      // bad value
            "AV:N/AC:L/Au:N/C:P/I:P/A:P/Z:1",  // unknown metric
            "AV:N/AV:N/AC:L/Au:N/C:P/I:P/A:P", // duplicate
            "AVN/AC:L/Au:N/C:P/I:P/A:P",       // no colon
            "",
        ] {
            assert!(bad.parse::<CvssV2Vector>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn v3_vector_roundtrip() {
        let s = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H";
        let v: CvssV3Vector = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
        assert_eq!(v.scope, ScopeV3::Changed);
    }

    #[test]
    fn v3_accepts_31_prefix() {
        let v: CvssV3Vector = "CVSS:3.1/AV:L/AC:H/PR:H/UI:R/S:U/C:N/I:N/A:L"
            .parse()
            .unwrap();
        assert_eq!(v.attack_vector, AttackVectorV3::Local);
    }

    #[test]
    fn v3_vector_rejects_malformed() {
        for bad in [
            "AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", // missing prefix
            "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H",
            "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:Z",
            "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/A:H",
        ] {
            assert!(bad.parse::<CvssV3Vector>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn severity_bands_match_table1() {
        // v2: L 0.0-3.9, M 4.0-6.9, H 7.0-10.0
        assert_eq!(Severity::from_v2_score(0.0), Severity::Low);
        assert_eq!(Severity::from_v2_score(3.9), Severity::Low);
        assert_eq!(Severity::from_v2_score(4.0), Severity::Medium);
        assert_eq!(Severity::from_v2_score(6.9), Severity::Medium);
        assert_eq!(Severity::from_v2_score(7.0), Severity::High);
        assert_eq!(Severity::from_v2_score(10.0), Severity::High);
        // v3: None 0.0, L 0.1-3.9, M 4.0-6.9, H 7.0-8.9, C 9.0-10.0
        assert_eq!(Severity::from_v3_score(0.0), Severity::None);
        assert_eq!(Severity::from_v3_score(0.1), Severity::Low);
        assert_eq!(Severity::from_v3_score(3.9), Severity::Low);
        assert_eq!(Severity::from_v3_score(4.0), Severity::Medium);
        assert_eq!(Severity::from_v3_score(6.9), Severity::Medium);
        assert_eq!(Severity::from_v3_score(7.0), Severity::High);
        assert_eq!(Severity::from_v3_score(8.9), Severity::High);
        assert_eq!(Severity::from_v3_score(9.0), Severity::Critical);
        assert_eq!(Severity::from_v3_score(10.0), Severity::Critical);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn severity_rejects_out_of_range() {
        let _ = Severity::from_v3_score(10.1);
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Low < Severity::Medium);
        assert!(Severity::Medium < Severity::High);
        assert!(Severity::High < Severity::Critical);
        assert_eq!(Severity::Critical.abbrev(), "C");
    }

    #[test]
    fn metric_enums_roundtrip_abbrevs() {
        for av in AccessVectorV2::ALL {
            assert_eq!(AccessVectorV2::from_abbrev(av.abbrev()), Some(*av));
        }
        for s in ScopeV3::ALL {
            assert_eq!(ScopeV3::from_abbrev(s.abbrev()), Some(*s));
        }
        assert_eq!(ImpactV3::from_abbrev("X"), None);
    }
}
