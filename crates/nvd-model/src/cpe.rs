//! CPE (Common Platform Enumeration) names: vendors, products, and URIs.
//!
//! The paper's §4.2 studies inconsistencies in the free-form vendor and
//! product strings attached to CVEs. [`VendorName`] and [`ProductName`] are
//! case-folded newtypes so that name comparisons throughout the cleaning
//! pipeline are well-typed, and [`CpeUri`] provides the 2.2/2.3 URI bindings
//! the discussion section mentions for analyst tooling.

use std::borrow::Borrow;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Error returned when parsing a CPE URI fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCpeError {
    msg: String,
}

impl ParseCpeError {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for ParseCpeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CPE: {}", self.msg)
    }
}

impl std::error::Error for ParseCpeError {}

macro_rules! name_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(String);

        impl $name {
            /// Creates a name, folding to the NVD's lowercase convention and
            /// replacing interior whitespace with underscores.
            pub fn new(raw: &str) -> Self {
                let mut s = String::with_capacity(raw.len());
                for ch in raw.trim().chars() {
                    if ch.is_whitespace() {
                        s.push('_');
                    } else {
                        s.extend(ch.to_lowercase());
                    }
                }
                Self(s)
            }

            /// The normalised name string.
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// Whether the name is empty after normalisation.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(raw: &str) -> Self {
                Self::new(raw)
            }
        }

        impl From<String> for $name {
            fn from(raw: String) -> Self {
                Self::new(&raw)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }
    };
}

name_newtype! {
    /// A vendor name as recorded in NVD CPE data, e.g. `bea_systems`.
    ///
    /// ```
    /// use nvd_model::cpe::VendorName;
    /// assert_eq!(VendorName::new("BEA Systems").as_str(), "bea_systems");
    /// ```
    VendorName
}

name_newtype! {
    /// A product name as recorded in NVD CPE data, e.g. `internet_explorer`.
    ProductName
}

/// The CPE "part" component: application, operating system, or hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CpePart {
    Application,
    OperatingSystem,
    Hardware,
}

impl CpePart {
    /// The single-letter code used in URIs (`a`, `o`, `h`).
    pub fn code(self) -> char {
        match self {
            CpePart::Application => 'a',
            CpePart::OperatingSystem => 'o',
            CpePart::Hardware => 'h',
        }
    }

    /// Parses the single-letter code.
    pub fn from_code(c: char) -> Option<Self> {
        match c {
            'a' => Some(CpePart::Application),
            'o' => Some(CpePart::OperatingSystem),
            'h' => Some(CpePart::Hardware),
            _ => None,
        }
    }
}

/// A vendor/product pair affected by a CVE, optionally with a version —
/// the unit the paper's name-consolidation operates on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CpeName {
    pub part: CpePart,
    pub vendor: VendorName,
    pub product: ProductName,
    /// Affected version, `None` meaning "any" (`*` in URIs). Version-range
    /// inconsistencies were studied by Dong et al. and are out of the paper's
    /// scope, so versions here are carried opaquely.
    pub version: Option<String>,
}

impl CpeName {
    /// Creates an application CPE name (the overwhelmingly common case).
    pub fn application(vendor: impl Into<VendorName>, product: impl Into<ProductName>) -> Self {
        Self {
            part: CpePart::Application,
            vendor: vendor.into(),
            product: product.into(),
            version: None,
        }
    }

    /// Sets the version component.
    pub fn with_version(mut self, version: impl Into<String>) -> Self {
        self.version = Some(version.into());
        self
    }

    /// Formats as a CPE 2.3 formatted string,
    /// e.g. `cpe:2.3:a:microsoft:internet_explorer:8.0:*:*:*:*:*:*:*`.
    pub fn to_uri_2_3(&self) -> String {
        format!(
            "cpe:2.3:{}:{}:{}:{}:*:*:*:*:*:*:*",
            self.part.code(),
            self.vendor,
            self.product,
            self.version.as_deref().unwrap_or("*"),
        )
    }

    /// Formats as a legacy CPE 2.2 URI, e.g. `cpe:/a:microsoft:internet_explorer:8.0`.
    pub fn to_uri_2_2(&self) -> String {
        let mut s = format!("cpe:/{}:{}:{}", self.part.code(), self.vendor, self.product);
        if let Some(v) = &self.version {
            s.push(':');
            s.push_str(v);
        }
        s
    }
}

/// A parsed CPE URI in either the 2.2 or 2.3 binding.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpeUri {
    /// Which binding the URI used.
    pub binding: CpeBinding,
    /// The decoded name.
    pub name: CpeName,
}

/// The CPE URI binding version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpeBinding {
    V2_2,
    V2_3,
}

impl FromStr for CpeUri {
    type Err = ParseCpeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix("cpe:2.3:") {
            let fields: Vec<&str> = rest.split(':').collect();
            if fields.len() != 11 {
                return Err(ParseCpeError::new(format!(
                    "cpe 2.3 needs 11 components, got {}",
                    fields.len()
                )));
            }
            let part = parse_part(fields[0])?;
            let version = match fields[3] {
                "*" | "-" => None,
                v => Some(v.to_owned()),
            };
            Ok(CpeUri {
                binding: CpeBinding::V2_3,
                name: CpeName {
                    part,
                    vendor: VendorName::new(fields[1]),
                    product: ProductName::new(fields[2]),
                    version,
                },
            })
        } else if let Some(rest) = s.strip_prefix("cpe:/") {
            let fields: Vec<&str> = rest.split(':').collect();
            if fields.len() < 3 || fields.len() > 7 {
                return Err(ParseCpeError::new(format!(
                    "cpe 2.2 needs 3-7 components, got {}",
                    fields.len()
                )));
            }
            let part = parse_part(fields[0])?;
            Ok(CpeUri {
                binding: CpeBinding::V2_2,
                name: CpeName {
                    part,
                    vendor: VendorName::new(fields[1]),
                    product: ProductName::new(fields[2]),
                    version: fields
                        .get(3)
                        .filter(|v| !v.is_empty())
                        .map(|v| (*v).to_owned()),
                },
            })
        } else {
            Err(ParseCpeError::new("missing cpe:/ or cpe:2.3: prefix"))
        }
    }
}

fn parse_part(s: &str) -> Result<CpePart, ParseCpeError> {
    let mut chars = s.chars();
    let (Some(c), None) = (chars.next(), chars.next()) else {
        return Err(ParseCpeError::new(format!("part {s:?}")));
    };
    CpePart::from_code(c).ok_or_else(|| ParseCpeError::new(format!("part {s:?}")))
}

impl fmt::Display for CpeUri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.binding {
            CpeBinding::V2_2 => f.write_str(&self.name.to_uri_2_2()),
            CpeBinding::V2_3 => f.write_str(&self.name.to_uri_2_3()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_fold_case_and_whitespace() {
        assert_eq!(VendorName::new("BEA Systems").as_str(), "bea_systems");
        assert_eq!(VendorName::new("avast!").as_str(), "avast!");
        assert_eq!(
            ProductName::new("Internet Explorer").as_str(),
            "internet_explorer"
        );
        assert_eq!(ProductName::new("  AntiVirus ").as_str(), "antivirus");
        assert!(VendorName::new("  ").is_empty());
    }

    #[test]
    fn cpe_2_3_roundtrip() {
        let name = CpeName::application("microsoft", "internet explorer").with_version("8.0");
        let uri = name.to_uri_2_3();
        assert_eq!(
            uri,
            "cpe:2.3:a:microsoft:internet_explorer:8.0:*:*:*:*:*:*:*"
        );
        let parsed: CpeUri = uri.parse().unwrap();
        assert_eq!(parsed.binding, CpeBinding::V2_3);
        assert_eq!(parsed.name, name);
    }

    #[test]
    fn cpe_2_2_roundtrip() {
        let name = CpeName {
            part: CpePart::OperatingSystem,
            vendor: VendorName::new("linux"),
            product: ProductName::new("linux_kernel"),
            version: Some("2.6.32".into()),
        };
        let uri = name.to_uri_2_2();
        assert_eq!(uri, "cpe:/o:linux:linux_kernel:2.6.32");
        let parsed: CpeUri = uri.parse().unwrap();
        assert_eq!(parsed.binding, CpeBinding::V2_2);
        assert_eq!(parsed.name, name);
    }

    #[test]
    fn cpe_version_wildcards() {
        let uri: CpeUri = "cpe:2.3:a:cisco:ucs-e160dp-m1_firmware:*:*:*:*:*:*:*:*"
            .parse()
            .unwrap();
        assert_eq!(uri.name.version, None);
        assert_eq!(uri.name.product.as_str(), "ucs-e160dp-m1_firmware");
    }

    #[test]
    fn cpe_rejects_malformed() {
        for bad in [
            "cpe:2.3:a:v:p", // too few
            "cpe:2.3:x:v:p:*:*:*:*:*:*:*:*",
            "cpe:/x:v:p",
            "cpe:/a",
            "not-a-cpe",
            "",
        ] {
            assert!(bad.parse::<CpeUri>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn part_codes() {
        for part in [
            CpePart::Application,
            CpePart::OperatingSystem,
            CpePart::Hardware,
        ] {
            assert_eq!(CpePart::from_code(part.code()), Some(part));
        }
        assert_eq!(CpePart::from_code('z'), None);
    }
}
