//! Civil (proleptic Gregorian) date arithmetic.
//!
//! The NVD study needs day-level arithmetic (lag times, day-of-week analyses,
//! year buckets) but no time zones or clocks, so this module implements a
//! small, exact civil-date type instead of pulling in a calendar crate.
//!
//! Conversions between a date and its day number use Howard Hinnant's
//! `days_from_civil` / `civil_from_days` algorithms, which are exact over the
//! entire `i32` year range used here.

use std::fmt;
use std::str::FromStr;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Error returned when parsing a [`Date`] from text fails.
///
/// The inner string describes the malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDateError {
    msg: String,
}

impl ParseDateError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for ParseDateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid date: {}", self.msg)
    }
}

impl std::error::Error for ParseDateError {}

/// Day of the week, ISO numbering (`Monday` = 1 … `Sunday` = 7).
///
/// ```
/// use nvd_model::date::{Date, Weekday};
/// let d = Date::from_ymd(2011, 2, 7).unwrap(); // CVE-2011-0700 advisory date
/// assert_eq!(d.weekday(), Weekday::Monday);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// All weekdays in ISO order, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Two-letter abbreviation as used in the paper's Table 8 (`M`, `T`, `W`, `Th`, `F`, `Sa`, `Su`).
    pub fn paper_abbrev(self) -> &'static str {
        match self {
            Weekday::Monday => "M",
            Weekday::Tuesday => "T",
            Weekday::Wednesday => "W",
            Weekday::Thursday => "Th",
            Weekday::Friday => "F",
            Weekday::Saturday => "Sa",
            Weekday::Sunday => "Su",
        }
    }

    /// Index into [`Weekday::ALL`] (Monday = 0 … Sunday = 6).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this day falls on the weekend.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Weekday::Monday => "Mon",
            Weekday::Tuesday => "Tue",
            Weekday::Wednesday => "Wed",
            Weekday::Thursday => "Thu",
            Weekday::Friday => "Fri",
            Weekday::Saturday => "Sat",
            Weekday::Sunday => "Sun",
        };
        f.write_str(name)
    }
}

/// A civil (proleptic Gregorian) calendar date with day precision.
///
/// Dates are totally ordered, hashable and cheap to copy. The canonical
/// textual form is ISO-8601 (`YYYY-MM-DD`), which is also the serde
/// representation, so a serialized [`Date`] is human-readable inside the JSON
/// feeds produced by this workspace.
///
/// ```
/// use nvd_model::date::Date;
/// let pub_date: Date = "2011-03-14".parse()?;
/// let advisory: Date = "2011-02-07".parse()?;
/// assert_eq!(pub_date.days_since(advisory), 35); // CVE-2011-0700 lag
/// # Ok::<(), nvd_model::date::ParseDateError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Days since the civil epoch 1970-01-01 (may be negative).
    days: i32,
}

impl Date {
    /// Earliest year accepted by [`Date::from_ymd`]; NVD entries start in 1988.
    pub const MIN_YEAR: i32 = 1800;
    /// Latest year accepted by [`Date::from_ymd`].
    pub const MAX_YEAR: i32 = 2999;

    /// Constructs a date from calendar components.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDateError`] if the month or day is out of range for the
    /// given year, or the year lies outside `[MIN_YEAR, MAX_YEAR]`.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Self, ParseDateError> {
        if !(Self::MIN_YEAR..=Self::MAX_YEAR).contains(&year) {
            return Err(ParseDateError::new(format!("year {year} out of range")));
        }
        if !(1..=12).contains(&month) {
            return Err(ParseDateError::new(format!("month {month} out of range")));
        }
        let dim = days_in_month(year, month);
        if day == 0 || day > dim {
            return Err(ParseDateError::new(format!(
                "day {day} out of range for {year}-{month:02}"
            )));
        }
        Ok(Self {
            days: days_from_civil(year, month, day),
        })
    }

    /// Constructs a date directly from a day number relative to 1970-01-01.
    pub fn from_day_number(days: i32) -> Self {
        Self { days }
    }

    /// Day number relative to 1970-01-01 (negative before the epoch).
    pub fn day_number(self) -> i32 {
        self.days
    }

    /// Calendar year.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// Calendar month, 1-based.
    pub fn month(self) -> u32 {
        self.ymd().1
    }

    /// Calendar day of month, 1-based.
    pub fn day(self) -> u32 {
        self.ymd().2
    }

    /// All three calendar components at once.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.days)
    }

    /// Day of the week.
    pub fn weekday(self) -> Weekday {
        // 1970-01-01 was a Thursday; index Monday = 0.
        let idx = (self.days + 3).rem_euclid(7) as usize;
        Weekday::ALL[idx]
    }

    /// The date `n` days later (or earlier for negative `n`).
    pub fn plus_days(self, n: i32) -> Self {
        Self {
            days: self.days + n,
        }
    }

    /// Signed whole-day difference `self - other`.
    pub fn days_since(self, other: Date) -> i32 {
        self.days - other.days
    }

    /// First day of this date's year, used for year-bucketed analyses.
    pub fn start_of_year(self) -> Self {
        Self::from_ymd(self.year(), 1, 1).expect("jan 1 always valid")
    }

    /// Whether this is December 31st — the NVD "year-end artifact" day the
    /// paper calls out in Table 8.
    pub fn is_new_years_eve(self) -> bool {
        let (_, m, d) = self.ymd();
        m == 12 && d == 31
    }

    /// US-style short form used by the paper's tables, e.g. `12/31/04`.
    pub fn paper_short(self) -> String {
        let (y, m, d) = self.ymd();
        format!("{:02}/{:02}/{:02}", m, d, y.rem_euclid(100))
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl FromStr for Date {
    type Err = ParseDateError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.splitn(3, '-');
        let y = parts
            .next()
            .ok_or_else(|| ParseDateError::new(s))?
            .parse::<i32>()
            .map_err(|_| ParseDateError::new(s))?;
        let m = parts
            .next()
            .ok_or_else(|| ParseDateError::new(s))?
            .parse::<u32>()
            .map_err(|_| ParseDateError::new(s))?;
        let d = parts
            .next()
            .ok_or_else(|| ParseDateError::new(s))?
            .parse::<u32>()
            .map_err(|_| ParseDateError::new(s))?;
        Date::from_ymd(y, m, d)
    }
}

impl Serialize for Date {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for Date {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(D::Error::custom)
    }
}

/// Whether `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in `month` of `year`.
///
/// # Panics
///
/// Panics if `month` is not in `1..=12`.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month {month} out of range"),
    }
}

/// Hinnant's `days_from_civil`: days since 1970-01-01 for a y/m/d triple.
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe as i32 - 719_468
}

/// Hinnant's `civil_from_days`: y/m/d triple for days since 1970-01-01.
fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        let d = Date::from_ymd(1970, 1, 1).unwrap();
        assert_eq!(d.day_number(), 0);
        assert_eq!(d.weekday(), Weekday::Thursday);
    }

    #[test]
    fn known_dates_roundtrip() {
        for &(y, m, d) in &[
            (1988, 1, 1),
            (1999, 12, 31),
            (2000, 2, 29),
            (2004, 12, 31),
            (2011, 2, 7),
            (2016, 2, 29),
            (2018, 5, 21), // the paper's NVD snapshot date
            (2100, 3, 1),
        ] {
            let date = Date::from_ymd(y, m, d).unwrap();
            assert_eq!(date.ymd(), (y, m, d), "roundtrip {y}-{m}-{d}");
        }
    }

    #[test]
    fn rejects_invalid_components() {
        assert!(Date::from_ymd(2001, 2, 29).is_err());
        assert!(Date::from_ymd(2001, 13, 1).is_err());
        assert!(Date::from_ymd(2001, 0, 1).is_err());
        assert!(Date::from_ymd(2001, 6, 31).is_err());
        assert!(Date::from_ymd(2001, 6, 0).is_err());
        assert!(Date::from_ymd(1500, 6, 1).is_err());
        assert!(Date::from_ymd(3200, 6, 1).is_err());
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2016));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2018));
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
    }

    #[test]
    fn weekday_matches_known_calendar() {
        // Paper Table 8: 12/31/04 was a Friday, 05/02/05 a Monday,
        // 09/09/14 a Tuesday, 07/05/17 a Wednesday, 02/15/18 a Thursday.
        let cases = [
            ((2004, 12, 31), Weekday::Friday),
            ((2005, 5, 2), Weekday::Monday),
            ((2014, 9, 9), Weekday::Tuesday),
            ((2017, 7, 5), Weekday::Wednesday),
            ((2018, 2, 15), Weekday::Thursday),
            ((2005, 12, 31), Weekday::Saturday),
        ];
        for ((y, m, d), wd) in cases {
            assert_eq!(Date::from_ymd(y, m, d).unwrap().weekday(), wd);
        }
    }

    #[test]
    fn parse_and_display() {
        let d: Date = "2018-05-21".parse().unwrap();
        assert_eq!(d.to_string(), "2018-05-21");
        assert_eq!(d.paper_short(), "05/21/18");
        assert!("2018-5".parse::<Date>().is_err());
        assert!("18-05-21x".parse::<Date>().is_err());
        assert!("banana".parse::<Date>().is_err());
        assert!("".parse::<Date>().is_err());
    }

    #[test]
    fn arithmetic() {
        let d: Date = "2011-02-07".parse().unwrap();
        assert_eq!(d.plus_days(35).to_string(), "2011-03-14");
        assert_eq!(d.plus_days(35).days_since(d), 35);
        assert_eq!(d.plus_days(-7).weekday(), d.weekday());
        assert_eq!(d.start_of_year().to_string(), "2011-01-01");
    }

    #[test]
    fn new_years_eve_flag() {
        assert!("2004-12-31".parse::<Date>().unwrap().is_new_years_eve());
        assert!(!"2004-12-30".parse::<Date>().unwrap().is_new_years_eve());
    }

    #[test]
    fn ordering_follows_calendar() {
        let a: Date = "2001-09-09".parse().unwrap();
        let b: Date = "2001-09-10".parse().unwrap();
        let c: Date = "2002-01-01".parse().unwrap();
        assert!(a < b && b < c);
        assert_eq!(a.max(c), c);
    }

    #[test]
    fn serde_roundtrip_is_iso() {
        let d: Date = "1999-12-31".parse().unwrap();
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(json, "\"1999-12-31\"");
        let back: Date = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn weekday_cycles_over_centuries() {
        // Every consecutive day advances the weekday by exactly one slot.
        let mut d = Date::from_ymd(1899, 12, 28).unwrap();
        for _ in 0..200 * 366 {
            let next = d.plus_days(1);
            let want = (d.weekday().index() + 1) % 7;
            assert_eq!(next.weekday().index(), want);
            d = next;
        }
    }
}
