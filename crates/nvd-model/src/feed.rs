//! (De)serialization of the NVD JSON data-feed format.
//!
//! Implements the subset of the NVD "JSON 1.0" feed schema that carries the
//! fields the paper studies, so a [`Database`] can be exported to — and
//! re-imported from — a feed document that is structurally compatible with
//! what `nvd.nist.gov` publishes. Field names intentionally match the NVD
//! schema (`CVE_Items`, `publishedDate`, `baseMetricV2`, …).

use serde::{Deserialize, Serialize};

use crate::cpe::CpeUri;
use crate::cve::CveId;
use crate::cwe::CweLabel;
use crate::database::Database;
use crate::date::Date;
use crate::entry::{
    CveEntry, CvssV2Record, CvssV3Record, Description, DescriptionSource, Reference,
};
use crate::metrics::{CvssV2Vector, CvssV3Vector};

/// Error produced when parsing or converting a feed document into a
/// [`Database`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedError {
    /// One CVE item failed to convert: malformed id, date, vector string,
    /// CWE label or CPE URI.
    Item {
        /// The CVE item the error occurred in, if known.
        cve_id: Option<String>,
        /// What went wrong.
        msg: String,
    },
    /// The same CVE id appears more than once in one feed document.
    /// Previously this resolved last-write-wins silently; a conforming
    /// feed never repeats an id, so a repeat is corruption worth
    /// surfacing.
    DuplicateId {
        /// The repeated id.
        cve_id: String,
    },
    /// The document is not valid JSON (or does not fit the feed schema).
    Json {
        /// The underlying parse error.
        msg: String,
    },
}

impl std::fmt::Display for FeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Item {
                cve_id: Some(id),
                msg,
            } => write!(f, "feed item {id}: {msg}"),
            Self::Item { cve_id: None, msg } => write!(f, "feed: {msg}"),
            Self::DuplicateId { cve_id } => write!(f, "feed: duplicate CVE id {cve_id}"),
            Self::Json { msg } => write!(f, "feed: invalid JSON: {msg}"),
        }
    }
}

impl std::error::Error for FeedError {}

/// Top-level feed document, mirroring `nvdcve-1.0-*.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedDocument {
    #[serde(rename = "CVE_data_type")]
    pub data_type: String,
    #[serde(rename = "CVE_data_format")]
    pub data_format: String,
    #[serde(rename = "CVE_data_version")]
    pub data_version: String,
    #[serde(rename = "CVE_data_numberOfCVEs")]
    pub number_of_cves: String,
    #[serde(rename = "CVE_data_timestamp")]
    pub timestamp: String,
    #[serde(rename = "CVE_Items")]
    pub items: Vec<FeedItem>,
}

/// One `CVE_Items` element.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedItem {
    pub cve: FeedCve,
    #[serde(default)]
    pub configurations: FeedConfigurations,
    #[serde(default)]
    pub impact: FeedImpact,
    #[serde(rename = "publishedDate")]
    pub published_date: String,
    #[serde(rename = "lastModifiedDate")]
    pub last_modified_date: String,
}

/// The `cve` object of a feed item.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedCve {
    #[serde(rename = "CVE_data_meta")]
    pub meta: FeedMeta,
    pub problemtype: FeedProblemType,
    pub references: FeedReferences,
    pub description: FeedDescriptions,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedMeta {
    #[serde(rename = "ID")]
    pub id: String,
    #[serde(rename = "ASSIGNER", default)]
    pub assigner: String,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FeedProblemType {
    #[serde(rename = "problemtype_data", default)]
    pub data: Vec<FeedProblemTypeData>,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FeedProblemTypeData {
    #[serde(default)]
    pub description: Vec<FeedLangString>,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FeedReferences {
    #[serde(rename = "reference_data", default)]
    pub data: Vec<FeedReference>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedReference {
    pub url: String,
    #[serde(default)]
    pub tags: Vec<String>,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FeedDescriptions {
    #[serde(rename = "description_data", default)]
    pub data: Vec<FeedLangString>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedLangString {
    pub lang: String,
    pub value: String,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FeedConfigurations {
    #[serde(rename = "CVE_data_version", default)]
    pub data_version: String,
    #[serde(default)]
    pub nodes: Vec<FeedNode>,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FeedNode {
    #[serde(default)]
    pub operator: String,
    #[serde(rename = "cpe_match", default)]
    pub cpe_match: Vec<FeedCpeMatch>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedCpeMatch {
    pub vulnerable: bool,
    #[serde(rename = "cpe23Uri")]
    pub cpe23_uri: String,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FeedImpact {
    #[serde(rename = "baseMetricV2", skip_serializing_if = "Option::is_none")]
    pub base_metric_v2: Option<FeedBaseMetricV2>,
    #[serde(rename = "baseMetricV3", skip_serializing_if = "Option::is_none")]
    pub base_metric_v3: Option<FeedBaseMetricV3>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedBaseMetricV2 {
    #[serde(rename = "cvssV2")]
    pub cvss_v2: FeedCvssV2,
    pub severity: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedCvssV2 {
    #[serde(rename = "vectorString")]
    pub vector_string: String,
    #[serde(rename = "baseScore")]
    pub base_score: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedBaseMetricV3 {
    #[serde(rename = "cvssV3")]
    pub cvss_v3: FeedCvssV3,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedCvssV3 {
    #[serde(rename = "vectorString")]
    pub vector_string: String,
    #[serde(rename = "baseScore")]
    pub base_score: f64,
    #[serde(rename = "baseSeverity")]
    pub base_severity: String,
}

/// Serializes a database to a feed document.
pub fn to_feed(db: &Database, timestamp: &str) -> FeedDocument {
    let items = db.iter().map(entry_to_item).collect::<Vec<_>>();
    FeedDocument {
        data_type: "CVE".to_owned(),
        data_format: "MITRE".to_owned(),
        data_version: "4.0".to_owned(),
        number_of_cves: items.len().to_string(),
        timestamp: timestamp.to_owned(),
        items,
    }
}

/// Parses a feed document into a database.
///
/// # Errors
///
/// Returns the first [`FeedError`] encountered: malformed CVE id, date,
/// vector string, or CPE URI — or [`FeedError::DuplicateId`] if the same
/// CVE id appears in more than one item (a conforming feed never repeats
/// an id; ingesters that want finer duplicate policy convert items
/// themselves via [`item_to_entry`]).
pub fn from_feed(doc: &FeedDocument) -> Result<Database, FeedError> {
    let mut db = Database::new();
    for item in &doc.items {
        let entry = item_to_entry(item)?;
        if db.get(&entry.id).is_some() {
            return Err(FeedError::DuplicateId {
                cve_id: entry.id.to_string(),
            });
        }
        db.push(entry);
    }
    Ok(db)
}

/// Parses raw JSON text into a [`FeedDocument`].
///
/// # Errors
///
/// Returns [`FeedError::Json`] when the text is truncated, malformed, or
/// does not fit the feed schema.
pub fn parse_feed_json(json: &str) -> Result<FeedDocument, FeedError> {
    serde_json::from_str(json).map_err(|e| FeedError::Json { msg: e.to_string() })
}

fn entry_to_item(e: &CveEntry) -> FeedItem {
    FeedItem {
        cve: FeedCve {
            meta: FeedMeta {
                id: e.id.to_string(),
                assigner: "cve@mitre.org".to_owned(),
            },
            problemtype: FeedProblemType {
                data: vec![FeedProblemTypeData {
                    description: e
                        .cwes
                        .iter()
                        .filter(|c| !matches!(c, CweLabel::Unassigned))
                        .map(|c| FeedLangString {
                            lang: "en".to_owned(),
                            value: c.feed_str(),
                        })
                        .collect(),
                }],
            },
            references: FeedReferences {
                data: e
                    .references
                    .iter()
                    .map(|r| FeedReference {
                        url: r.url.clone(),
                        tags: r.tags.clone(),
                    })
                    .collect(),
            },
            description: FeedDescriptions {
                data: e
                    .descriptions
                    .iter()
                    .map(|d| FeedLangString {
                        lang: d.lang.clone(),
                        value: match d.source {
                            DescriptionSource::Analyst => d.text.clone(),
                            // NVD marks evaluator text by a conventional prefix.
                            DescriptionSource::Evaluator => format!("** EVALUATOR: {}", d.text),
                        },
                    })
                    .collect(),
            },
        },
        configurations: FeedConfigurations {
            data_version: "4.0".to_owned(),
            nodes: vec![FeedNode {
                operator: "OR".to_owned(),
                cpe_match: e
                    .affected
                    .iter()
                    .map(|c| FeedCpeMatch {
                        vulnerable: true,
                        cpe23_uri: c.to_uri_2_3(),
                    })
                    .collect(),
            }],
        },
        impact: FeedImpact {
            base_metric_v2: e.cvss_v2.as_ref().map(|r| FeedBaseMetricV2 {
                cvss_v2: FeedCvssV2 {
                    vector_string: r.vector.to_string(),
                    base_score: r.base_score,
                },
                severity: r.severity().to_string().to_uppercase(),
            }),
            base_metric_v3: e.cvss_v3.as_ref().map(|r| FeedBaseMetricV3 {
                cvss_v3: FeedCvssV3 {
                    vector_string: r.vector.to_string(),
                    base_score: r.base_score,
                    base_severity: r.severity().to_string().to_uppercase(),
                },
            }),
        },
        published_date: e.published.to_string(),
        last_modified_date: e.last_modified.to_string(),
    }
}

/// Converts one feed item into a [`CveEntry`]. Exposed so ingesters with
/// their own duplicate/quarantine policy can convert items individually
/// instead of going through [`from_feed`]'s first-error-wins loop.
pub fn item_to_entry(item: &FeedItem) -> Result<CveEntry, FeedError> {
    let err = |msg: String| FeedError::Item {
        cve_id: Some(item.cve.meta.id.clone()),
        msg,
    };
    let id: CveId = item.cve.meta.id.parse().map_err(|e| err(format!("{e}")))?;
    // Feed dates may carry a time suffix like `2011-03-14T21:55Z`.
    let date_part = |s: &str| s.split('T').next().unwrap_or(s).to_owned();
    let published: Date = date_part(&item.published_date)
        .parse()
        .map_err(|e| err(format!("publishedDate: {e}")))?;
    let last_modified: Date = date_part(&item.last_modified_date)
        .parse()
        .map_err(|e| err(format!("lastModifiedDate: {e}")))?;

    let mut entry = CveEntry::new(id, published);
    entry.last_modified = last_modified;

    entry.cwes = item
        .cve
        .problemtype
        .data
        .iter()
        .flat_map(|d| &d.description)
        .map(|ls| CweLabel::from_feed_str(&ls.value))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| err(format!("{e}")))?;
    if entry.cwes.is_empty() {
        entry.cwes.push(CweLabel::Unassigned);
    }

    entry.references = item
        .cve
        .references
        .data
        .iter()
        .map(|r| Reference {
            url: r.url.clone(),
            tags: r.tags.clone(),
        })
        .collect();

    entry.descriptions = item
        .cve
        .description
        .data
        .iter()
        .map(|ls| match ls.value.strip_prefix("** EVALUATOR: ") {
            Some(rest) => Description {
                source: DescriptionSource::Evaluator,
                lang: ls.lang.clone(),
                text: rest.to_owned(),
            },
            None => Description {
                source: DescriptionSource::Analyst,
                lang: ls.lang.clone(),
                text: ls.value.clone(),
            },
        })
        .collect();

    for node in &item.configurations.nodes {
        for m in &node.cpe_match {
            let uri: CpeUri = m
                .cpe23_uri
                .parse()
                .map_err(|e| err(format!("cpe23Uri: {e}")))?;
            entry.affected.push(uri.name);
        }
    }

    if let Some(v2) = &item.impact.base_metric_v2 {
        let vector: CvssV2Vector = v2
            .cvss_v2
            .vector_string
            .parse()
            .map_err(|e| err(format!("v2 vector: {e}")))?;
        entry.cvss_v2 = Some(CvssV2Record {
            vector,
            base_score: v2.cvss_v2.base_score,
        });
    }
    if let Some(v3) = &item.impact.base_metric_v3 {
        let vector: CvssV3Vector = v3
            .cvss_v3
            .vector_string
            .parse()
            .map_err(|e| err(format!("v3 vector: {e}")))?;
        entry.cvss_v3 = Some(CvssV3Record {
            vector,
            base_score: v3.cvss_v3.base_score,
        });
    }
    Ok(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpe::CpeName;
    use crate::cwe::CweId;
    use crate::metrics::*;

    fn sample_db() -> Database {
        let mut e = CveEntry::new(
            "CVE-2007-0838".parse().unwrap(),
            "2007-02-08".parse().unwrap(),
        );
        e.cwes = vec![CweLabel::Other];
        e.descriptions.push(Description::analyst(
            "Adobe Acrobat Reader allows remote attackers to cause a denial of service via a crafted PDF.",
        ));
        e.descriptions.push(Description::evaluator(
            "CWE-835: Loop with Unreachable Exit Condition ('Infinite Loop')",
        ));
        e.references
            .push(Reference::new("https://www.securitytracker.com/id/1017597"));
        e.affected
            .push(CpeName::application("adobe", "acrobat_reader").with_version("8.0"));
        e.cvss_v2 = Some(CvssV2Record {
            vector: "AV:N/AC:M/Au:N/C:N/I:N/A:P".parse().unwrap(),
            base_score: 4.3,
        });
        e.cvss_v3 = Some(CvssV3Record {
            vector: "CVSS:3.0/AV:N/AC:L/PR:N/UI:R/S:U/C:N/I:N/A:H"
                .parse()
                .unwrap(),
            base_score: 6.5,
        });
        Database::from_entries([e])
    }

    #[test]
    fn feed_roundtrip_preserves_entries() {
        let db = sample_db();
        let feed = to_feed(&db, "2018-05-21T00:00Z");
        assert_eq!(feed.number_of_cves, "1");
        let json = serde_json::to_string_pretty(&feed).unwrap();
        assert!(json.contains("\"CVE_Items\""));
        assert!(json.contains("\"cpe23Uri\""));
        let parsed: FeedDocument = serde_json::from_str(&json).unwrap();
        let back = from_feed(&parsed).unwrap();
        assert_eq!(back.len(), 1);
        let e = back.get(&"CVE-2007-0838".parse().unwrap()).unwrap();
        assert_eq!(e.cwes, vec![CweLabel::Other]);
        assert_eq!(
            e.evaluator_comment().unwrap(),
            "CWE-835: Loop with Unreachable Exit Condition ('Infinite Loop')"
        );
        assert_eq!(e.affected[0].vendor.as_str(), "adobe");
        assert_eq!(e.cvss_v2.unwrap().base_score, 4.3);
        assert_eq!(e.cvss_v3.unwrap().severity(), Severity::Medium);
    }

    #[test]
    fn feed_roundtrip_is_exact_database_equality() {
        let mut db = sample_db();
        // A second entry exercising the sparse path: unassigned CWE (which
        // the exporter drops and the importer restores), no metrics, no
        // references, versionless CPE.
        let mut e2 = CveEntry::new(
            "CVE-2010-0001".parse().unwrap(),
            "2010-01-04".parse().unwrap(),
        );
        e2.last_modified = "2010-02-11".parse().unwrap();
        e2.cwes = vec![CweLabel::Unassigned];
        e2.descriptions
            .push(Description::analyst("Buffer overflow in grep."));
        e2.affected.push(CpeName::application("gnu", "grep"));
        db.push(e2);

        let feed = to_feed(&db, "2020-01-01T00:00Z");
        let json = serde_json::to_string(&feed).unwrap();
        let parsed: FeedDocument = serde_json::from_str(&json).unwrap();
        let back = from_feed(&parsed).unwrap();
        assert_eq!(back.as_slice(), db.as_slice(), "round trip must be exact");
    }

    #[test]
    fn feed_dates_accept_time_suffix() {
        let db = sample_db();
        let mut feed = to_feed(&db, "t");
        feed.items[0].published_date = "2007-02-08T19:28Z".to_owned();
        let back = from_feed(&feed).unwrap();
        assert_eq!(
            back.iter().next().unwrap().published.to_string(),
            "2007-02-08"
        );
    }

    #[test]
    fn feed_rejects_bad_items() {
        let db = sample_db();
        let mut feed = to_feed(&db, "t");
        feed.items[0].cve.meta.id = "NOT-A-CVE".to_owned();
        let e = from_feed(&feed).unwrap_err();
        assert!(e.to_string().contains("NOT-A-CVE"));

        let mut feed2 = to_feed(&db, "t");
        feed2.items[0]
            .impact
            .base_metric_v2
            .as_mut()
            .unwrap()
            .cvss_v2
            .vector_string = "garbage".to_owned();
        assert!(from_feed(&feed2).is_err());
    }

    #[test]
    fn feed_rejects_duplicate_cve_ids() {
        let db = sample_db();
        let mut feed = to_feed(&db, "t");
        let copy = feed.items[0].clone();
        feed.items.push(copy);
        let e = from_feed(&feed).unwrap_err();
        assert_eq!(
            e,
            FeedError::DuplicateId {
                cve_id: "CVE-2007-0838".to_owned()
            }
        );
        assert_eq!(e.to_string(), "feed: duplicate CVE id CVE-2007-0838");
    }

    #[test]
    fn parse_feed_json_surfaces_truncation() {
        let db = sample_db();
        let json = serde_json::to_string(&to_feed(&db, "t")).unwrap();
        let doc = parse_feed_json(&json).unwrap();
        assert_eq!(from_feed(&doc).unwrap().as_slice(), db.as_slice());

        let truncated = &json[..json.len() * 2 / 3];
        let e = parse_feed_json(truncated).unwrap_err();
        assert!(matches!(e, FeedError::Json { .. }), "got {e:?}");
        assert!(e.to_string().starts_with("feed: invalid JSON:"));

        let e = parse_feed_json("{\"CVE_data_type\": \"CVE\"}").unwrap_err();
        assert!(matches!(e, FeedError::Json { .. }), "missing fields: {e:?}");
    }

    #[test]
    fn cwe_specific_labels_roundtrip() {
        let mut db = sample_db();
        db.get_mut(&"CVE-2007-0838".parse().unwrap()).unwrap().cwes =
            vec![CweLabel::Specific(CweId::new(835)), CweLabel::NoInfo];
        let feed = to_feed(&db, "t");
        let back = from_feed(&feed).unwrap();
        let e = back.get(&"CVE-2007-0838".parse().unwrap()).unwrap();
        assert_eq!(
            e.cwes,
            vec![CweLabel::Specific(CweId::new(835)), CweLabel::NoInfo]
        );
    }
}
