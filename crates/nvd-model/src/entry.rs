//! The CVE entry record: the unit of NVD data.

use serde::{Deserialize, Serialize};

use crate::cpe::CpeName;
use crate::cve::CveId;
use crate::cwe::CweLabel;
use crate::date::Date;
use crate::metrics::{CvssV2Vector, CvssV3Vector, Severity};

/// Who authored a free-form description.
///
/// NVD entries typically carry the reporter's description of the flaw and may
/// carry an *evaluator* comment; §4.4 of the paper mines CWE IDs specifically
/// out of evaluator text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DescriptionSource {
    /// The primary vulnerability description.
    Analyst,
    /// A comment added by the CVE entry evaluator.
    Evaluator,
}

/// A free-form description attached to a CVE entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Description {
    pub source: DescriptionSource,
    /// BCP-47-ish language tag; NVD descriptions are `en`.
    pub lang: String,
    pub text: String,
}

impl Description {
    /// Creates an English analyst description.
    pub fn analyst(text: impl Into<String>) -> Self {
        Self {
            source: DescriptionSource::Analyst,
            lang: "en".to_owned(),
            text: text.into(),
        }
    }

    /// Creates an English evaluator comment.
    pub fn evaluator(text: impl Into<String>) -> Self {
        Self {
            source: DescriptionSource::Evaluator,
            lang: "en".to_owned(),
            text: text.into(),
        }
    }
}

/// A reference URL attached to a CVE entry (advisory, bug report, …).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reference {
    pub url: String,
    /// NVD reference tags such as `Vendor Advisory` or `Patch`.
    pub tags: Vec<String>,
}

impl Reference {
    /// Creates an untagged reference.
    pub fn new(url: impl Into<String>) -> Self {
        Self {
            url: url.into(),
            tags: Vec::new(),
        }
    }

    /// The registrable domain of the URL, used to dispatch per-domain
    /// crawlers (everything between `://` and the first `/`).
    pub fn domain(&self) -> Option<&str> {
        let rest = self.url.split_once("://")?.1;
        let host = rest.split(['/', '?', '#']).next()?;
        let host = host.split('@').next_back()?; // strip userinfo if any
        let host = host.split(':').next()?; // strip port
        if host.is_empty() {
            None
        } else {
            Some(host)
        }
    }
}

/// A CVSS v2 assessment as recorded in an entry: the vector plus the score
/// NVD published for it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CvssV2Record {
    pub vector: CvssV2Vector,
    pub base_score: f64,
}

impl CvssV2Record {
    /// Severity band of the recorded score (paper Table 1).
    pub fn severity(&self) -> Severity {
        Severity::from_v2_score(self.base_score)
    }
}

/// A CVSS v3.0 assessment as recorded in an entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CvssV3Record {
    pub vector: CvssV3Vector,
    pub base_score: f64,
}

impl CvssV3Record {
    /// Severity band of the recorded score (paper Table 1).
    pub fn severity(&self) -> Severity {
        Severity::from_v3_score(self.base_score)
    }
}

/// A single NVD vulnerability entry.
///
/// Field inventory follows §3 of the paper: CVE ID, publication date, CWE
/// type, CVSS severity (v2 always, v3 for recent entries), affected CPE
/// names, free-form descriptions, and optional reference URLs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CveEntry {
    pub id: CveId,
    /// Date the entry was added to the NVD — *not* necessarily the public
    /// disclosure date, which is the gap §4.1 measures.
    pub published: Date,
    /// Date of the last modification to the entry.
    pub last_modified: Date,
    /// Vulnerability type labels. NVD predominantly assigns one label; the
    /// paper's rectification may add more mined from descriptions.
    pub cwes: Vec<CweLabel>,
    pub cvss_v2: Option<CvssV2Record>,
    pub cvss_v3: Option<CvssV3Record>,
    /// Affected vendor/product pairs.
    pub affected: Vec<CpeName>,
    pub descriptions: Vec<Description>,
    pub references: Vec<Reference>,
}

impl CveEntry {
    /// Creates a minimal entry with the given ID and publication date.
    pub fn new(id: CveId, published: Date) -> Self {
        Self {
            id,
            published,
            last_modified: published,
            cwes: vec![CweLabel::Unassigned],
            cvss_v2: None,
            cvss_v3: None,
            affected: Vec::new(),
            descriptions: Vec::new(),
            references: Vec::new(),
        }
    }

    /// The primary (analyst) description text, if present.
    pub fn primary_description(&self) -> Option<&str> {
        self.descriptions
            .iter()
            .find(|d| d.source == DescriptionSource::Analyst)
            .map(|d| d.text.as_str())
    }

    /// The evaluator comment text, if present.
    pub fn evaluator_comment(&self) -> Option<&str> {
        self.descriptions
            .iter()
            .find(|d| d.source == DescriptionSource::Evaluator)
            .map(|d| d.text.as_str())
    }

    /// Whether the entry has a v3 score (≈35% of the paper's snapshot).
    pub fn has_v3(&self) -> bool {
        self.cvss_v3.is_some()
    }

    /// The effective CWE label: the first specific ID if any, else the first
    /// degenerate label, else `Unassigned`.
    pub fn effective_cwe(&self) -> CweLabel {
        self.cwes
            .iter()
            .copied()
            .find(|c| !c.is_degenerate())
            .or_else(|| self.cwes.first().copied())
            .unwrap_or(CweLabel::Unassigned)
    }

    /// v2 severity band, if a v2 score is recorded.
    pub fn severity_v2(&self) -> Option<Severity> {
        self.cvss_v2.as_ref().map(CvssV2Record::severity)
    }

    /// v3 severity band, if a v3 score is recorded.
    pub fn severity_v3(&self) -> Option<Severity> {
        self.cvss_v3.as_ref().map(CvssV3Record::severity)
    }

    /// Distinct vendors affected by this entry, in first-seen order.
    pub fn vendors(&self) -> impl Iterator<Item = &crate::cpe::VendorName> + '_ {
        let mut seen: Vec<&crate::cpe::VendorName> = Vec::new();
        self.affected.iter().filter_map(move |cpe| {
            if seen.contains(&&cpe.vendor) {
                None
            } else {
                seen.push(&cpe.vendor);
                Some(&cpe.vendor)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{AccessComplexityV2, AccessVectorV2, AuthenticationV2, ImpactV2};

    fn sample_entry() -> CveEntry {
        let mut e = CveEntry::new(
            "CVE-2011-0700".parse().unwrap(),
            "2011-03-14".parse().unwrap(),
        );
        e.descriptions.push(Description::analyst(
            "Cross-site scripting (XSS) vulnerability in WordPress before 3.0.5 allows remote attackers to inject arbitrary web script.",
        ));
        e.descriptions.push(Description::evaluator(
            "Per: CWE-79: Improper Neutralization of Input During Web Page Generation",
        ));
        e.references
            .push(Reference::new("https://www.securityfocus.com/bid/46249"));
        e.cvss_v2 = Some(CvssV2Record {
            vector: CvssV2Vector::new(
                AccessVectorV2::Network,
                AccessComplexityV2::Medium,
                AuthenticationV2::Single,
                ImpactV2::None,
                ImpactV2::Partial,
                ImpactV2::None,
            ),
            base_score: 3.5,
        });
        e
    }

    #[test]
    fn descriptions_by_source() {
        let e = sample_entry();
        assert!(e.primary_description().unwrap().contains("WordPress"));
        assert!(e.evaluator_comment().unwrap().contains("CWE-79"));
    }

    #[test]
    fn severity_accessors() {
        let e = sample_entry();
        assert_eq!(e.severity_v2(), Some(Severity::Low));
        assert_eq!(e.severity_v3(), None);
        assert!(!e.has_v3());
    }

    #[test]
    fn reference_domain_extraction() {
        let cases = [
            (
                "https://www.securityfocus.com/bid/46249",
                Some("www.securityfocus.com"),
            ),
            ("http://jvn.jp/en/jp/JVN12345/index.html", Some("jvn.jp")),
            ("https://example.com:8443/x?y#z", Some("example.com")),
            ("https://user@example.org/path", Some("example.org")),
            (
                "ftp://archives.neohapsis.com/archives/",
                Some("archives.neohapsis.com"),
            ),
            ("no-scheme.com/path", None),
            ("https:///nohost", None),
        ];
        for (url, want) in cases {
            assert_eq!(Reference::new(url).domain(), want, "{url}");
        }
    }

    #[test]
    fn effective_cwe_prefers_specific() {
        let mut e = sample_entry();
        e.cwes = vec![
            CweLabel::Other,
            CweLabel::Specific(crate::cwe::CweId::new(79)),
        ];
        assert_eq!(
            e.effective_cwe(),
            CweLabel::Specific(crate::cwe::CweId::new(79))
        );
        e.cwes = vec![CweLabel::NoInfo];
        assert_eq!(e.effective_cwe(), CweLabel::NoInfo);
        e.cwes.clear();
        assert_eq!(e.effective_cwe(), CweLabel::Unassigned);
    }

    #[test]
    fn vendors_deduplicated() {
        let mut e = sample_entry();
        e.affected = vec![
            CpeName::application("wordpress", "wordpress"),
            CpeName::application("wordpress", "wordpress_mu"),
            CpeName::application("microsoft", "iis"),
        ];
        let vendors: Vec<_> = e.vendors().map(|v| v.as_str().to_owned()).collect();
        assert_eq!(vendors, vec!["wordpress", "microsoft"]);
    }

    #[test]
    fn json_roundtrip() {
        let e = sample_entry();
        let json = serde_json::to_string(&e).unwrap();
        let back: CveEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
