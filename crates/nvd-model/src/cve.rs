//! CVE identifiers.

use std::fmt;
use std::str::FromStr;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Error returned when a CVE identifier string is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCveIdError {
    input: String,
}

impl fmt::Display for ParseCveIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CVE identifier: {:?}", self.input)
    }
}

impl std::error::Error for ParseCveIdError {}

/// A Common Vulnerabilities and Exposures identifier, e.g. `CVE-2011-0700`.
///
/// The identifier is stored as its two numeric components, so the type is
/// `Copy`, orders chronologically by assignment year then sequence number, and
/// formats back to the canonical `CVE-YYYY-NNNN` form (sequence numbers are
/// zero-padded to at least four digits, matching MITRE's convention).
///
/// ```
/// use nvd_model::cve::CveId;
/// let id: CveId = "CVE-2011-0700".parse()?;
/// assert_eq!(id.year(), 2011);
/// assert_eq!(id.sequence(), 700);
/// assert_eq!(id.to_string(), "CVE-2011-0700");
/// # Ok::<(), nvd_model::cve::ParseCveIdError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CveId {
    year: u16,
    sequence: u32,
}

impl CveId {
    /// Creates an identifier from its year and sequence number.
    pub fn new(year: u16, sequence: u32) -> Self {
        Self { year, sequence }
    }

    /// The CVE assignment year (the `YYYY` in `CVE-YYYY-NNNN`).
    ///
    /// Note the paper's Figure 3 buckets CVEs by this year, which can precede
    /// the NVD publication year (IDs are assigned when reported).
    pub fn year(self) -> u16 {
        self.year
    }

    /// The per-year sequence number.
    pub fn sequence(self) -> u32 {
        self.sequence
    }
}

impl fmt::Display for CveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CVE-{}-{:04}", self.year, self.sequence)
    }
}

impl FromStr for CveId {
    type Err = ParseCveIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseCveIdError {
            input: s.to_owned(),
        };
        let rest = s.strip_prefix("CVE-").ok_or_else(err)?;
        let (year_str, seq_str) = rest.split_once('-').ok_or_else(err)?;
        if year_str.len() != 4 || seq_str.len() < 4 || seq_str.len() > 7 {
            return Err(err());
        }
        if !seq_str.bytes().all(|b| b.is_ascii_digit()) {
            return Err(err());
        }
        let year = year_str.parse::<u16>().map_err(|_| err())?;
        let sequence = seq_str.parse::<u32>().map_err(|_| err())?;
        if !(1900..=2999).contains(&year) {
            return Err(err());
        }
        Ok(Self { year, sequence })
    }
}

impl Serialize for CveId {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for CveId {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_canonical() {
        let id: CveId = "CVE-2011-0700".parse().unwrap();
        assert_eq!(id, CveId::new(2011, 700));
        assert_eq!(id.to_string(), "CVE-2011-0700");
    }

    #[test]
    fn parse_long_sequence() {
        // Post-2014 CVE IDs may have more than four digits.
        let id: CveId = "CVE-2017-1000001".parse().unwrap();
        assert_eq!(id.sequence(), 1_000_001);
        assert_eq!(id.to_string(), "CVE-2017-1000001");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "CVE-11-0700",
            "CVE-2011-07",
            "cve-2011-0700",
            "CVE-2011-07x0",
            "CVE20110700",
            "CVE-1899-0001",
            "CVE-2011-12345678",
            "",
        ] {
            assert!(bad.parse::<CveId>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn ordering_is_chronological() {
        let a: CveId = "CVE-2004-0113".parse().unwrap();
        let b: CveId = "CVE-2004-0999".parse().unwrap();
        let c: CveId = "CVE-2011-0997".parse().unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn serde_uses_canonical_string() {
        let id = CveId::new(2008, 166);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "\"CVE-2008-0166\"");
        assert_eq!(serde_json::from_str::<CveId>(&json).unwrap(), id);
    }
}
