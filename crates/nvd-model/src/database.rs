//! The in-memory vulnerability database: a collection of [`CveEntry`]s with
//! id lookup and the aggregate statistics the paper reports in §3.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::cpe::{ProductName, VendorName};
use crate::cve::CveId;
use crate::entry::CveEntry;

/// Aggregate statistics of a database, mirroring the paper's §3 inventory
/// ("107.2K CVEs … 453 CWE types, affecting 18.9K vendors and 46.6K products;
/// 37.5K recent CVEs have the modern v3 severity label").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatabaseStats {
    pub cve_count: usize,
    pub distinct_cwe_types: usize,
    pub distinct_vendors: usize,
    pub distinct_products: usize,
    pub with_v3: usize,
    pub with_v2: usize,
    pub reference_count: usize,
    pub distinct_domains: usize,
    /// Publication-year range, `None` for an empty database.
    pub year_range: Option<(i32, i32)>,
}

/// An in-memory NVD-like vulnerability database.
///
/// Entries are kept sorted by CVE ID; insertion maintains a lookup index.
/// The cleaning pipeline treats a `Database` as immutable input and produces
/// a rectified copy, so mutation is limited to construction-time pushes and
/// whole-entry replacement.
///
/// ```
/// use nvd_model::database::Database;
/// use nvd_model::entry::CveEntry;
///
/// let mut db = Database::new();
/// db.push(CveEntry::new("CVE-2008-0166".parse()?, "2008-05-13".parse()?));
/// assert_eq!(db.len(), 1);
/// assert!(db.get(&"CVE-2008-0166".parse()?).is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    entries: Vec<CveEntry>,
    #[serde(skip)]
    index: BTreeMap<CveId, usize>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a database from entries; later duplicates of an ID replace
    /// earlier ones (NVD feeds carry at most one record per CVE).
    pub fn from_entries(entries: impl IntoIterator<Item = CveEntry>) -> Self {
        let mut db = Self::new();
        for e in entries {
            db.push(e);
        }
        db
    }

    /// Adds an entry, replacing any previous entry with the same ID.
    pub fn push(&mut self, entry: CveEntry) {
        match self.index.get(&entry.id) {
            Some(&i) => self.entries[i] = entry,
            None => {
                self.index.insert(entry.id, self.entries.len());
                self.entries.push(entry);
            }
        }
    }

    /// Looks up an entry by CVE ID.
    pub fn get(&self, id: &CveId) -> Option<&CveEntry> {
        self.index.get(id).map(|&i| &self.entries[i])
    }

    /// Mutable lookup by CVE ID.
    pub fn get_mut(&mut self, id: &CveId) -> Option<&mut CveEntry> {
        self.index.get(id).map(|&i| &mut self.entries[i])
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, CveEntry> {
        self.entries.iter()
    }

    /// The entries as a slice, in insertion order.
    pub fn as_slice(&self) -> &[CveEntry] {
        &self.entries
    }

    /// Mutable iteration, for in-place rectification passes.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, CveEntry> {
        self.entries.iter_mut()
    }

    /// Rebuilds the ID index; call after deserializing.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.id, i))
            .collect();
    }

    /// Distinct vendor names across all entries.
    pub fn vendor_set(&self) -> BTreeSet<&VendorName> {
        self.entries
            .iter()
            .flat_map(|e| e.affected.iter().map(|c| &c.vendor))
            .collect()
    }

    /// Distinct product names across all entries.
    pub fn product_set(&self) -> BTreeSet<&ProductName> {
        self.entries
            .iter()
            .flat_map(|e| e.affected.iter().map(|c| &c.product))
            .collect()
    }

    /// Map from vendor to the set of CVE ids that affect it.
    pub fn cves_by_vendor(&self) -> BTreeMap<&VendorName, BTreeSet<CveId>> {
        let mut map: BTreeMap<&VendorName, BTreeSet<CveId>> = BTreeMap::new();
        for e in &self.entries {
            for cpe in &e.affected {
                map.entry(&cpe.vendor).or_default().insert(e.id);
            }
        }
        map
    }

    /// Map from vendor to the set of its product names.
    pub fn products_by_vendor(&self) -> BTreeMap<&VendorName, BTreeSet<&ProductName>> {
        let mut map: BTreeMap<&VendorName, BTreeSet<&ProductName>> = BTreeMap::new();
        for e in &self.entries {
            for cpe in &e.affected {
                map.entry(&cpe.vendor).or_default().insert(&cpe.product);
            }
        }
        map
    }

    /// Aggregate statistics (the paper's §3 numbers for the real snapshot).
    pub fn stats(&self) -> DatabaseStats {
        let mut cwes = BTreeSet::new();
        let mut domains = BTreeSet::new();
        let mut with_v2 = 0;
        let mut with_v3 = 0;
        let mut refs = 0;
        let mut min_year = i32::MAX;
        let mut max_year = i32::MIN;
        for e in &self.entries {
            for c in &e.cwes {
                if let Some(id) = c.specific() {
                    cwes.insert(id);
                }
            }
            if e.cvss_v2.is_some() {
                with_v2 += 1;
            }
            if e.cvss_v3.is_some() {
                with_v3 += 1;
            }
            refs += e.references.len();
            for r in &e.references {
                if let Some(d) = r.domain() {
                    domains.insert(d.to_owned());
                }
            }
            let y = e.published.year();
            min_year = min_year.min(y);
            max_year = max_year.max(y);
        }
        DatabaseStats {
            cve_count: self.entries.len(),
            distinct_cwe_types: cwes.len(),
            distinct_vendors: self.vendor_set().len(),
            distinct_products: self.product_set().len(),
            with_v3,
            with_v2,
            reference_count: refs,
            distinct_domains: domains.len(),
            year_range: if self.entries.is_empty() {
                None
            } else {
                Some((min_year, max_year))
            },
        }
    }
}

impl FromIterator<CveEntry> for Database {
    fn from_iter<T: IntoIterator<Item = CveEntry>>(iter: T) -> Self {
        Self::from_entries(iter)
    }
}

impl Extend<CveEntry> for Database {
    fn extend<T: IntoIterator<Item = CveEntry>>(&mut self, iter: T) {
        for e in iter {
            self.push(e);
        }
    }
}

impl<'a> IntoIterator for &'a Database {
    type Item = &'a CveEntry;
    type IntoIter = std::slice::Iter<'a, CveEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl IntoIterator for Database {
    type Item = CveEntry;
    type IntoIter = std::vec::IntoIter<CveEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpe::CpeName;
    use crate::cwe::{CweId, CweLabel};
    use crate::entry::Reference;

    fn entry(id: &str, published: &str) -> CveEntry {
        CveEntry::new(id.parse().unwrap(), published.parse().unwrap())
    }

    #[test]
    fn push_get_replace() {
        let mut db = Database::new();
        db.push(entry("CVE-2001-0001", "2001-01-10"));
        db.push(entry("CVE-2002-0002", "2002-02-20"));
        assert_eq!(db.len(), 2);

        let mut replacement = entry("CVE-2001-0001", "2001-01-15");
        replacement
            .references
            .push(Reference::new("https://a.example/x"));
        db.push(replacement);
        assert_eq!(db.len(), 2, "same id replaces, not appends");
        assert_eq!(
            db.get(&"CVE-2001-0001".parse().unwrap())
                .unwrap()
                .published
                .to_string(),
            "2001-01-15"
        );
    }

    #[test]
    fn stats_counts_everything() {
        let mut db = Database::new();
        let mut a = entry("CVE-2001-0001", "2001-01-10");
        a.cwes = vec![CweLabel::Specific(CweId::new(79))];
        a.affected.push(CpeName::application("microsoft", "iis"));
        a.references
            .push(Reference::new("https://www.kb.cert.org/vuls/1"));
        a.references
            .push(Reference::new("https://bugzilla.redhat.com/2"));
        let mut b = entry("CVE-2005-0002", "2005-06-01");
        b.cwes = vec![CweLabel::Specific(CweId::new(89)), CweLabel::Other];
        b.affected
            .push(CpeName::application("microsoft", "sql_server"));
        b.affected.push(CpeName::application("oracle", "database"));
        b.references
            .push(Reference::new("https://www.kb.cert.org/vuls/3"));
        db.push(a);
        db.push(b);

        let stats = db.stats();
        assert_eq!(stats.cve_count, 2);
        assert_eq!(stats.distinct_cwe_types, 2);
        assert_eq!(stats.distinct_vendors, 2);
        assert_eq!(stats.distinct_products, 3);
        assert_eq!(stats.reference_count, 3);
        assert_eq!(stats.distinct_domains, 2);
        assert_eq!(stats.year_range, Some((2001, 2005)));
    }

    #[test]
    fn empty_database_stats() {
        let db = Database::new();
        let stats = db.stats();
        assert_eq!(stats.cve_count, 0);
        assert_eq!(stats.year_range, None);
        assert!(db.is_empty());
    }

    #[test]
    fn groupings() {
        let mut db = Database::new();
        let mut a = entry("CVE-2001-0001", "2001-01-10");
        a.affected.push(CpeName::application("bea", "weblogic"));
        let mut b = entry("CVE-2001-0002", "2001-02-10");
        b.affected.push(CpeName::application("bea", "weblogic"));
        b.affected.push(CpeName::application("bea", "tuxedo"));
        db.push(a);
        db.push(b);

        let by_vendor = db.cves_by_vendor();
        let bea = VendorName::new("bea");
        assert_eq!(by_vendor[&bea].len(), 2);
        let products = db.products_by_vendor();
        assert_eq!(products[&bea].len(), 2);
    }

    #[test]
    fn serde_roundtrip_rebuilds_index() {
        let mut db = Database::new();
        db.push(entry("CVE-2010-3333", "2010-11-10"));
        let json = serde_json::to_string(&db).unwrap();
        let mut back: Database = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert!(back.get(&"CVE-2010-3333".parse().unwrap()).is_some());
    }

    #[test]
    fn collect_from_iterator() {
        let db: Database = (1..=5)
            .map(|i| entry(&format!("CVE-2003-{:04}", i), "2003-05-05"))
            .collect();
        assert_eq!(db.len(), 5);
        let ids: Vec<_> = (&db).into_iter().map(|e| e.id.sequence()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }
}
