//! Edge-case tests for `Date` arithmetic: leap years, month and year
//! boundaries, ordering, and round trips at the supported extremes.

use nvd_model::date::{days_in_month, is_leap_year, Date, Weekday};

#[test]
fn century_leap_rules() {
    // Divisible by 400 => leap; by 100 only => common; by 4 only => leap.
    assert!(is_leap_year(2000));
    assert!(!is_leap_year(1900));
    assert!(!is_leap_year(2100));
    assert!(is_leap_year(2400));
    assert!(is_leap_year(1988));
    assert!(!is_leap_year(2019));

    assert!(Date::from_ymd(2000, 2, 29).is_ok());
    assert!(Date::from_ymd(1900, 2, 29).is_err());
    assert!(Date::from_ymd(2100, 2, 29).is_err());
    assert!(Date::from_ymd(2400, 2, 29).is_ok());
}

#[test]
fn month_boundary_arithmetic() {
    let jan31: Date = "2018-01-31".parse().unwrap();
    assert_eq!(jan31.plus_days(1).to_string(), "2018-02-01");
    assert_eq!(jan31.plus_days(28).to_string(), "2018-02-28");
    assert_eq!(jan31.plus_days(29).to_string(), "2018-03-01");

    // Leap-day crossing, both directions.
    let feb28: Date = "2016-02-28".parse().unwrap();
    assert_eq!(feb28.plus_days(1).to_string(), "2016-02-29");
    assert_eq!(feb28.plus_days(2).to_string(), "2016-03-01");
    let mar1: Date = "2016-03-01".parse().unwrap();
    assert_eq!(mar1.plus_days(-1).to_string(), "2016-02-29");

    // Year boundary, both directions.
    let nye: Date = "2004-12-31".parse().unwrap();
    assert_eq!(nye.plus_days(1).to_string(), "2005-01-01");
    let nyd: Date = "2005-01-01".parse().unwrap();
    assert_eq!(nyd.plus_days(-1), nye);
}

#[test]
fn leap_year_lengths() {
    // A leap year is 366 days start-to-start; a common year 365.
    let y2016: Date = "2016-01-01".parse().unwrap();
    let y2017: Date = "2017-01-01".parse().unwrap();
    assert_eq!(y2017.days_since(y2016), 366);
    let y2018: Date = "2018-01-01".parse().unwrap();
    assert_eq!(y2018.days_since(y2017), 365);
    // The 1900 century boundary is a common year.
    let a = Date::from_ymd(1900, 1, 1).unwrap();
    let b = Date::from_ymd(1901, 1, 1).unwrap();
    assert_eq!(b.days_since(a), 365);
}

#[test]
fn every_month_length_consistent_with_arithmetic() {
    for year in [1999, 2000, 2016, 2018, 2100] {
        for month in 1..=12u32 {
            let dim = days_in_month(year, month);
            let first = Date::from_ymd(year, month, 1).unwrap();
            let last = Date::from_ymd(year, month, dim).unwrap();
            assert_eq!(last.days_since(first), dim as i32 - 1);
            // The day after the last of the month is the 1st of the next.
            let next = last.plus_days(1);
            assert_eq!(next.day(), 1, "{year}-{month}");
            assert!(Date::from_ymd(year, month, dim + 1).is_err());
        }
    }
}

#[test]
fn ordering_and_extremes_round_trip() {
    let min = Date::from_ymd(Date::MIN_YEAR, 1, 1).unwrap();
    let max = Date::from_ymd(Date::MAX_YEAR, 12, 31).unwrap();
    assert!(min < max);
    assert_eq!(Date::from_day_number(min.day_number()), min);
    assert_eq!(Date::from_day_number(max.day_number()), max);
    assert_eq!(min.ymd(), (1800, 1, 1));
    assert_eq!(max.ymd(), (2999, 12, 31));

    // Total order agrees with day numbers across a mixed sample.
    let mut sample: Vec<Date> = [
        "2004-12-31",
        "1988-01-01",
        "2018-05-21",
        "2000-02-29",
        "1970-01-01",
        "2999-12-31",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();
    sample.sort();
    let mut by_number = sample.clone();
    by_number.sort_by_key(|d| d.day_number());
    assert_eq!(sample, by_number);
}

#[test]
fn weekday_at_edges() {
    // 2000-02-29 was a Tuesday; 1900-02-28 a Wednesday.
    assert_eq!(
        Date::from_ymd(2000, 2, 29).unwrap().weekday(),
        Weekday::Tuesday
    );
    assert_eq!(
        Date::from_ymd(1900, 2, 28).unwrap().weekday(),
        Weekday::Wednesday
    );
    // Weekday advances by exactly one across the leap day.
    let before = Date::from_ymd(2016, 2, 28).unwrap();
    for offset in 0..4 {
        let d = before.plus_days(offset);
        let want = (before.weekday().index() + offset as usize) % 7;
        assert_eq!(d.weekday().index(), want, "{d}");
    }
}
