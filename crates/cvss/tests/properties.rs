//! Property-based tests for the CVSS scoring equations.

use cvss::{score_v2, score_v3, v2, v3};
use nvd_model::metrics::*;
use proptest::prelude::*;

fn arb_v2() -> impl Strategy<Value = CvssV2Vector> {
    (
        prop::sample::select(AccessVectorV2::ALL.to_vec()),
        prop::sample::select(AccessComplexityV2::ALL.to_vec()),
        prop::sample::select(AuthenticationV2::ALL.to_vec()),
        prop::sample::select(ImpactV2::ALL.to_vec()),
        prop::sample::select(ImpactV2::ALL.to_vec()),
        prop::sample::select(ImpactV2::ALL.to_vec()),
    )
        .prop_map(|(av, ac, au, c, i, a)| CvssV2Vector::new(av, ac, au, c, i, a))
}

fn arb_v3() -> impl Strategy<Value = CvssV3Vector> {
    (
        prop::sample::select(AttackVectorV3::ALL.to_vec()),
        prop::sample::select(AttackComplexityV3::ALL.to_vec()),
        prop::sample::select(PrivilegesRequiredV3::ALL.to_vec()),
        prop::sample::select(UserInteractionV3::ALL.to_vec()),
        prop::sample::select(ScopeV3::ALL.to_vec()),
        prop::sample::select(ImpactV3::ALL.to_vec()),
        prop::sample::select(ImpactV3::ALL.to_vec()),
        prop::sample::select(ImpactV3::ALL.to_vec()),
    )
        .prop_map(|(av, ac, pr, ui, s, c, i, a)| CvssV3Vector::new(av, ac, pr, ui, s, c, i, a))
}

/// Raises one impact metric a notch, if possible.
fn bump_v2(i: ImpactV2) -> Option<ImpactV2> {
    match i {
        ImpactV2::None => Some(ImpactV2::Partial),
        ImpactV2::Partial => Some(ImpactV2::Complete),
        ImpactV2::Complete => None,
    }
}

fn bump_v3(i: ImpactV3) -> Option<ImpactV3> {
    match i {
        ImpactV3::None => Some(ImpactV3::Low),
        ImpactV3::Low => Some(ImpactV3::High),
        ImpactV3::High => None,
    }
}

proptest! {
    #[test]
    fn v2_score_in_range(v in arb_v2()) {
        let (s, _) = score_v2(&v);
        prop_assert!((0.0..=10.0).contains(&s));
        // One decimal place exactly.
        prop_assert!((s * 10.0 - (s * 10.0).round()).abs() < 1e-9);
    }

    #[test]
    fn v3_score_in_range(v in arb_v3()) {
        let (s, _) = score_v3(&v);
        prop_assert!((0.0..=10.0).contains(&s));
        prop_assert!((s * 10.0 - (s * 10.0).round()).abs() < 1e-9);
    }

    #[test]
    fn v2_vector_string_roundtrip(v in arb_v2()) {
        let parsed: CvssV2Vector = v.to_string().parse().unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn v3_vector_string_roundtrip(v in arb_v3()) {
        let parsed: CvssV3Vector = v.to_string().parse().unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn v2_monotone_in_confidentiality(v in arb_v2()) {
        if let Some(higher) = bump_v2(v.confidentiality) {
            let mut w = v;
            w.confidentiality = higher;
            prop_assert!(v2::base_score(&w) >= v2::base_score(&v),
                "{} -> {} decreased", v, w);
        }
    }

    #[test]
    fn v3_monotone_in_each_impact(v in arb_v3()) {
        for field in 0..3 {
            let mut w = v;
            let bumped = match field {
                0 => bump_v3(v.confidentiality).map(|x| { w.confidentiality = x; }),
                1 => bump_v3(v.integrity).map(|x| { w.integrity = x; }),
                _ => bump_v3(v.availability).map(|x| { w.availability = x; }),
            };
            if bumped.is_some() {
                prop_assert!(v3::base_score(&w) >= v3::base_score(&v),
                    "{} -> {} decreased", v, w);
            }
        }
    }

    #[test]
    fn v3_zero_iff_no_impact(v in arb_v3()) {
        let zero = v.confidentiality == ImpactV3::None
            && v.integrity == ImpactV3::None
            && v.availability == ImpactV3::None;
        prop_assert_eq!(v3::base_score(&v) == 0.0, zero);
    }

    #[test]
    fn v2_temporal_never_exceeds_base(v in arb_v2(), e in 0usize..5, r in 0usize..5, c in 0usize..4) {
        use cvss::v2::*;
        let t = TemporalV2 {
            exploitability: [ExploitabilityV2::Unproven, ExploitabilityV2::ProofOfConcept,
                ExploitabilityV2::Functional, ExploitabilityV2::High, ExploitabilityV2::NotDefined][e],
            remediation_level: [RemediationLevelV2::OfficialFix, RemediationLevelV2::TemporaryFix,
                RemediationLevelV2::Workaround, RemediationLevelV2::Unavailable, RemediationLevelV2::NotDefined][r],
            report_confidence: [ReportConfidenceV2::Unconfirmed, ReportConfidenceV2::Uncorroborated,
                ReportConfidenceV2::Confirmed, ReportConfidenceV2::NotDefined][c],
        };
        prop_assert!(temporal_score(&v, t) <= base_score(&v));
    }

    #[test]
    fn v3_temporal_never_exceeds_base(v in arb_v3(), e in 0usize..5, r in 0usize..5, c in 0usize..4) {
        use cvss::v3::*;
        let t = TemporalV3 {
            exploit_maturity: [ExploitMaturityV3::Unproven, ExploitMaturityV3::ProofOfConcept,
                ExploitMaturityV3::Functional, ExploitMaturityV3::High, ExploitMaturityV3::NotDefined][e],
            remediation_level: [RemediationLevelV3::OfficialFix, RemediationLevelV3::TemporaryFix,
                RemediationLevelV3::Workaround, RemediationLevelV3::Unavailable, RemediationLevelV3::NotDefined][r],
            report_confidence: [ReportConfidenceV3::Unknown, ReportConfidenceV3::Reasonable,
                ReportConfidenceV3::Confirmed, ReportConfidenceV3::NotDefined][c],
        };
        prop_assert!(temporal_score(&v, t) <= base_score(&v));
    }
}
