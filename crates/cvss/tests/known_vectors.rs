//! Hand-computed CVSS reference scores, worked directly from the FIRST v2
//! and v3.0 base-equation specifications. Each expectation was derived by
//! hand (impact / exploitability subscores shown in comments), so these
//! tests pin the scoring equations independently of the property tests.

use cvss::{score_v2, score_v3, v2, v3, Severity};
use nvd_model::metrics::{CvssV2Vector, CvssV3Vector};

fn v2v(s: &str) -> CvssV2Vector {
    s.parse().expect("valid v2 vector")
}

fn v3v(s: &str) -> CvssV3Vector {
    s.parse().expect("valid v3 vector")
}

#[test]
fn v2_known_vectors() {
    // Impact = 10.41·(1−(1−C)(1−I)(1−A)), Exploitability = 20·AV·AC·Au,
    // Base = ((0.6·Impact) + (0.4·Exploitability) − 1.5)·f(Impact).
    let cases = [
        // Classic fully-partial network vector (e.g. CVE-2002-0392).
        ("AV:N/AC:L/Au:N/C:P/I:P/A:P", 7.5),
        // Total compromise over the network.
        ("AV:N/AC:L/Au:N/C:C/I:C/A:C", 10.0),
        // No impact at all => f(Impact) = 0 => score 0.
        ("AV:L/AC:H/Au:N/C:N/I:N/A:N", 0.0),
        // Local root: Impact 10.0, Exploitability 3.95.
        ("AV:L/AC:L/Au:N/C:C/I:C/A:C", 7.2),
        // Authenticated medium-complexity info leak: 3.4697 rounds to 3.5.
        ("AV:N/AC:M/Au:S/C:P/I:N/A:N", 3.5),
        // Adjacent network, all partial: 4.9486·1.176 = 5.8.
        ("AV:A/AC:L/Au:N/C:P/I:P/A:P", 5.8),
    ];
    for (text, want) in cases {
        let v = v2v(text);
        assert_eq!(v2::base_score(&v), want, "{text}");
    }
}

#[test]
fn v2_severity_bands() {
    assert_eq!(
        score_v2(&v2v("AV:N/AC:L/Au:N/C:P/I:P/A:P")).1,
        Severity::High
    );
    assert_eq!(
        score_v2(&v2v("AV:N/AC:M/Au:S/C:P/I:N/A:N")).1,
        Severity::Low
    );
    assert_eq!(
        score_v2(&v2v("AV:L/AC:L/Au:N/C:P/I:P/A:P")).1,
        Severity::Medium // 4.6
    );
    assert_eq!(
        score_v2(&v2v("AV:N/AC:L/Au:N/C:C/I:C/A:C")).1,
        Severity::High
    );
}

#[test]
fn v3_known_vectors() {
    // ISS = 1−(1−C)(1−I)(1−A); Impact(U) = 6.42·ISS;
    // Exploitability = 8.22·AV·AC·PR·UI; Base = roundup(min(I+E, 10)).
    let cases = [
        // The ubiquitous unauthenticated network RCE banding.
        ("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 9.8),
        // Scope change lifts it to a flat 10.0.
        ("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", 10.0),
        // Local privileged-code execution (the kernel-LPE shape).
        ("CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H", 7.8),
        // Reflected XSS: scope-changed, low C/I impact, user interaction.
        ("CVSS:3.0/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N", 6.1),
        // Zero impact must be exactly zero regardless of exploitability.
        ("CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0),
        // Worst-case exploitability product: 1.51533 rounds up to 1.6.
        ("CVSS:3.0/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N", 1.6),
    ];
    for (text, want) in cases {
        let v = v3v(text);
        assert_eq!(v3::base_score(&v), want, "{text}");
    }
}

#[test]
fn v3_severity_bands() {
    let bands = [
        (
            "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
            Severity::Critical,
        ),
        (
            "CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H",
            Severity::High,
        ),
        (
            "CVSS:3.0/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N",
            Severity::Medium,
        ),
        (
            "CVSS:3.0/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N",
            Severity::Low,
        ),
        (
            "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:N/I:N/A:N",
            Severity::None,
        ),
    ];
    for (text, want) in bands {
        assert_eq!(score_v3(&v3v(text)).1, want, "{text}");
    }
}

#[test]
fn scores_round_to_one_decimal() {
    for v in cvss::all_v2_vectors() {
        let (s, _) = score_v2(&v);
        assert!((s * 10.0 - (s * 10.0).round()).abs() < 1e-9, "{v}: {s}");
    }
    for v in cvss::all_v3_vectors() {
        let (s, _) = score_v3(&v);
        assert!((s * 10.0 - (s * 10.0).round()).abs() < 1e-9, "{v}: {s}");
    }
}
