//! CVSS v2 scoring equations (base and temporal).
//!
//! Implements the v2 base-score equation from the CVSS v2.10 specification.
//! Weights and rounding follow the spec exactly; conformance tests use the
//! published scores of well-known CVEs.

use nvd_model::metrics::{
    AccessComplexityV2, AccessVectorV2, AuthenticationV2, CvssV2Vector, ImpactV2, Severity,
};

/// Numeric weight of the Access Vector metric.
pub fn access_vector_weight(av: AccessVectorV2) -> f64 {
    match av {
        AccessVectorV2::Local => 0.395,
        AccessVectorV2::AdjacentNetwork => 0.646,
        AccessVectorV2::Network => 1.0,
    }
}

/// Numeric weight of the Access Complexity metric.
pub fn access_complexity_weight(ac: AccessComplexityV2) -> f64 {
    match ac {
        AccessComplexityV2::High => 0.35,
        AccessComplexityV2::Medium => 0.61,
        AccessComplexityV2::Low => 0.71,
    }
}

/// Numeric weight of the Authentication metric.
pub fn authentication_weight(au: AuthenticationV2) -> f64 {
    match au {
        AuthenticationV2::Multiple => 0.45,
        AuthenticationV2::Single => 0.56,
        AuthenticationV2::None => 0.704,
    }
}

/// Numeric weight of a C/I/A impact metric.
pub fn impact_weight(i: ImpactV2) -> f64 {
    match i {
        ImpactV2::None => 0.0,
        ImpactV2::Partial => 0.275,
        ImpactV2::Complete => 0.660,
    }
}

/// The v2 impact sub-score: `10.41 * (1 - (1-C)(1-I)(1-A))`.
pub fn impact_subscore(v: &CvssV2Vector) -> f64 {
    let c = impact_weight(v.confidentiality);
    let i = impact_weight(v.integrity);
    let a = impact_weight(v.availability);
    10.41 * (1.0 - (1.0 - c) * (1.0 - i) * (1.0 - a))
}

/// The v2 exploitability sub-score: `20 * AV * AC * Au`.
pub fn exploitability_subscore(v: &CvssV2Vector) -> f64 {
    20.0 * access_vector_weight(v.access_vector)
        * access_complexity_weight(v.access_complexity)
        * authentication_weight(v.authentication)
}

/// Rounds to one decimal place, the v2 spec's rounding rule.
fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// Computes the CVSS v2 base score for a vector.
///
/// ```
/// use cvss::v2::base_score;
/// let v = "AV:N/AC:L/Au:N/C:N/I:N/A:C".parse()?; // CVE-2002-0392
/// assert_eq!(base_score(&v), 7.8);
/// # Ok::<(), nvd_model::metrics::ParseVectorError>(())
/// ```
pub fn base_score(v: &CvssV2Vector) -> f64 {
    let impact = impact_subscore(v);
    let exploitability = exploitability_subscore(v);
    let f_impact = if impact == 0.0 { 0.0 } else { 1.176 };
    round1(((0.6 * impact) + (0.4 * exploitability) - 1.5) * f_impact)
}

/// Severity band of a vector's base score (paper Table 1).
pub fn severity(v: &CvssV2Vector) -> Severity {
    Severity::from_v2_score(base_score(v))
}

/// v2 temporal metric: Exploitability (E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExploitabilityV2 {
    /// No exploit code is available.
    Unproven,
    /// Proof-of-concept exploit code exists.
    ProofOfConcept,
    /// Functional exploit code is available.
    Functional,
    /// Exploitation is widespread or requires no exploit code.
    High,
    /// Metric not assigned; skipped in scoring.
    NotDefined,
}

/// v2 temporal metric: Remediation Level (RL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RemediationLevelV2 {
    /// A complete vendor fix is available.
    OfficialFix,
    /// An official but temporary fix is available.
    TemporaryFix,
    /// Only an unofficial workaround exists.
    Workaround,
    /// No remediation is available.
    Unavailable,
    /// Metric not assigned; skipped in scoring.
    NotDefined,
}

/// v2 temporal metric: Report Confidence (RC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportConfidenceV2 {
    /// A single unconfirmed source.
    Unconfirmed,
    /// Multiple non-official sources.
    Uncorroborated,
    /// Acknowledged by the vendor.
    Confirmed,
    /// Metric not assigned; skipped in scoring.
    NotDefined,
}

/// The three v2 temporal metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TemporalV2 {
    /// Exploit-code maturity (E).
    pub exploitability: ExploitabilityV2,
    /// Remediation Level (RL).
    pub remediation_level: RemediationLevelV2,
    /// Report Confidence (RC).
    pub report_confidence: ReportConfidenceV2,
}

impl Default for TemporalV2 {
    fn default() -> Self {
        Self {
            exploitability: ExploitabilityV2::NotDefined,
            remediation_level: RemediationLevelV2::NotDefined,
            report_confidence: ReportConfidenceV2::NotDefined,
        }
    }
}

impl TemporalV2 {
    fn exploitability_weight(self) -> f64 {
        match self.exploitability {
            ExploitabilityV2::Unproven => 0.85,
            ExploitabilityV2::ProofOfConcept => 0.90,
            ExploitabilityV2::Functional => 0.95,
            ExploitabilityV2::High | ExploitabilityV2::NotDefined => 1.0,
        }
    }

    fn remediation_weight(self) -> f64 {
        match self.remediation_level {
            RemediationLevelV2::OfficialFix => 0.87,
            RemediationLevelV2::TemporaryFix => 0.90,
            RemediationLevelV2::Workaround => 0.95,
            RemediationLevelV2::Unavailable | RemediationLevelV2::NotDefined => 1.0,
        }
    }

    fn confidence_weight(self) -> f64 {
        match self.report_confidence {
            ReportConfidenceV2::Unconfirmed => 0.90,
            ReportConfidenceV2::Uncorroborated => 0.95,
            ReportConfidenceV2::Confirmed | ReportConfidenceV2::NotDefined => 1.0,
        }
    }
}

/// Computes the v2 temporal score: `round1(base * E * RL * RC)`.
pub fn temporal_score(v: &CvssV2Vector, t: TemporalV2) -> f64 {
    round1(
        base_score(v) * t.exploitability_weight() * t.remediation_weight() * t.confidence_weight(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec2(s: &str) -> CvssV2Vector {
        s.parse().unwrap()
    }

    #[test]
    fn published_conformance_scores() {
        // Scores published by FIRST / NVD for well-known CVEs.
        let cases = [
            ("AV:N/AC:L/Au:N/C:N/I:N/A:C", 7.8), // CVE-2002-0392 Apache chunked
            ("AV:N/AC:L/Au:N/C:C/I:C/A:C", 10.0), // worst case
            ("AV:N/AC:L/Au:N/C:P/I:P/A:P", 7.5), // classic remote partial
            ("AV:N/AC:M/Au:N/C:N/I:P/A:N", 4.3), // typical XSS
            ("AV:L/AC:H/Au:N/C:C/I:C/A:C", 6.2), // local hard full compromise
            ("AV:N/AC:L/Au:N/C:N/I:N/A:N", 0.0), // no impact
            ("AV:L/AC:L/Au:N/C:N/I:N/A:P", 2.1), // local DoS
            ("AV:N/AC:M/Au:S/C:P/I:P/A:P", 6.0),
            ("AV:N/AC:L/Au:N/C:P/I:N/A:N", 5.0),
            ("AV:A/AC:L/Au:N/C:P/I:P/A:P", 5.8),
        ];
        for (s, want) in cases {
            assert_eq!(base_score(&vec2(s)), want, "{s}");
        }
    }

    #[test]
    fn zero_impact_zeroes_score() {
        let v = vec2("AV:N/AC:L/Au:N/C:N/I:N/A:N");
        assert_eq!(impact_subscore(&v), 0.0);
        assert_eq!(base_score(&v), 0.0);
        assert_eq!(severity(&v), Severity::Low);
    }

    #[test]
    fn severity_bands() {
        assert_eq!(
            severity(&vec2("AV:N/AC:L/Au:N/C:C/I:C/A:C")),
            Severity::High
        );
        assert_eq!(
            severity(&vec2("AV:N/AC:M/Au:N/C:N/I:P/A:N")),
            Severity::Medium
        );
        assert_eq!(severity(&vec2("AV:L/AC:L/Au:N/C:N/I:N/A:P")), Severity::Low);
    }

    #[test]
    fn temporal_reduces_or_keeps_score() {
        let v = vec2("AV:N/AC:L/Au:N/C:C/I:C/A:C");
        let t = TemporalV2 {
            exploitability: ExploitabilityV2::Unproven,
            remediation_level: RemediationLevelV2::OfficialFix,
            report_confidence: ReportConfidenceV2::Unconfirmed,
        };
        // 10.0 * 0.85 * 0.87 * 0.90 = 6.6555 -> 6.7
        assert_eq!(temporal_score(&v, t), 6.7);
        assert_eq!(temporal_score(&v, TemporalV2::default()), 10.0);
    }

    #[test]
    fn exploitability_monotone_in_access_vector() {
        let local = vec2("AV:L/AC:L/Au:N/C:P/I:P/A:P");
        let adjacent = vec2("AV:A/AC:L/Au:N/C:P/I:P/A:P");
        let network = vec2("AV:N/AC:L/Au:N/C:P/I:P/A:P");
        assert!(exploitability_subscore(&local) < exploitability_subscore(&adjacent));
        assert!(exploitability_subscore(&adjacent) < exploitability_subscore(&network));
        assert!(base_score(&local) < base_score(&adjacent));
        assert!(base_score(&adjacent) < base_score(&network));
    }
}
