//! CVSS v3.0 scoring equations (base and temporal).
//!
//! Implements the v3.0 base-score equation from the FIRST specification,
//! including the scope-changed impact curve and the "round up to one decimal"
//! rule. Conformance tests use scores published in the official v3.0
//! examples document.

use nvd_model::metrics::{
    AttackComplexityV3, AttackVectorV3, CvssV3Vector, ImpactV3, PrivilegesRequiredV3, ScopeV3,
    Severity, UserInteractionV3,
};

/// Numeric weight of the Attack Vector metric.
pub fn attack_vector_weight(av: AttackVectorV3) -> f64 {
    match av {
        AttackVectorV3::Network => 0.85,
        AttackVectorV3::Adjacent => 0.62,
        AttackVectorV3::Local => 0.55,
        AttackVectorV3::Physical => 0.20,
    }
}

/// Numeric weight of the Attack Complexity metric.
pub fn attack_complexity_weight(ac: AttackComplexityV3) -> f64 {
    match ac {
        AttackComplexityV3::Low => 0.77,
        AttackComplexityV3::High => 0.44,
    }
}

/// Numeric weight of Privileges Required; the weight of `Low`/`High` rises
/// when the scope is changed.
pub fn privileges_required_weight(pr: PrivilegesRequiredV3, scope: ScopeV3) -> f64 {
    match (pr, scope) {
        (PrivilegesRequiredV3::None, _) => 0.85,
        (PrivilegesRequiredV3::Low, ScopeV3::Unchanged) => 0.62,
        (PrivilegesRequiredV3::Low, ScopeV3::Changed) => 0.68,
        (PrivilegesRequiredV3::High, ScopeV3::Unchanged) => 0.27,
        (PrivilegesRequiredV3::High, ScopeV3::Changed) => 0.50,
    }
}

/// Numeric weight of the User Interaction metric.
pub fn user_interaction_weight(ui: UserInteractionV3) -> f64 {
    match ui {
        UserInteractionV3::None => 0.85,
        UserInteractionV3::Required => 0.62,
    }
}

/// Numeric weight of a C/I/A impact metric.
pub fn impact_weight(i: ImpactV3) -> f64 {
    match i {
        ImpactV3::None => 0.0,
        ImpactV3::Low => 0.22,
        ImpactV3::High => 0.56,
    }
}

/// The impact sub-score base `ISCbase = 1 - (1-C)(1-I)(1-A)`.
pub fn impact_subscore_base(v: &CvssV3Vector) -> f64 {
    let c = impact_weight(v.confidentiality);
    let i = impact_weight(v.integrity);
    let a = impact_weight(v.availability);
    1.0 - (1.0 - c) * (1.0 - i) * (1.0 - a)
}

/// The scope-adjusted impact sub-score `ISC`.
pub fn impact_subscore(v: &CvssV3Vector) -> f64 {
    let base = impact_subscore_base(v);
    match v.scope {
        ScopeV3::Unchanged => 6.42 * base,
        ScopeV3::Changed => 7.52 * (base - 0.029) - 3.25 * (base - 0.02).powi(15),
    }
}

/// The exploitability sub-score `8.22 * AV * AC * PR * UI`.
pub fn exploitability_subscore(v: &CvssV3Vector) -> f64 {
    8.22 * attack_vector_weight(v.attack_vector)
        * attack_complexity_weight(v.attack_complexity)
        * privileges_required_weight(v.privileges_required, v.scope)
        * user_interaction_weight(v.user_interaction)
}

/// The v3.0 `Roundup` function: smallest number with one decimal place that
/// is `>= x` (with a small epsilon guard against binary-float artifacts).
pub fn roundup(x: f64) -> f64 {
    (x * 10.0 - 1e-9).ceil() / 10.0
}

/// Computes the CVSS v3.0 base score for a vector.
///
/// ```
/// use cvss::v3::base_score;
/// let v = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H".parse()?;
/// assert_eq!(base_score(&v), 9.8);
/// # Ok::<(), nvd_model::metrics::ParseVectorError>(())
/// ```
pub fn base_score(v: &CvssV3Vector) -> f64 {
    let isc = impact_subscore(v);
    if isc <= 0.0 {
        return 0.0;
    }
    let expl = exploitability_subscore(v);
    let raw = match v.scope {
        ScopeV3::Unchanged => (isc + expl).min(10.0),
        ScopeV3::Changed => (1.08 * (isc + expl)).min(10.0),
    };
    roundup(raw)
}

/// Severity band of a vector's base score (paper Table 1).
pub fn severity(v: &CvssV3Vector) -> Severity {
    Severity::from_v3_score(base_score(v))
}

/// v3 temporal metric: Exploit Code Maturity (E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExploitMaturityV3 {
    /// No exploit code is available.
    Unproven,
    /// Proof-of-concept exploit code exists.
    ProofOfConcept,
    /// Functional exploit code is available.
    Functional,
    /// Exploitation is widespread or requires no exploit code.
    High,
    /// Metric not assigned; skipped in scoring.
    NotDefined,
}

/// v3 temporal metric: Remediation Level (RL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RemediationLevelV3 {
    /// A complete vendor fix is available.
    OfficialFix,
    /// An official but temporary fix is available.
    TemporaryFix,
    /// Only an unofficial workaround exists.
    Workaround,
    /// No remediation is available.
    Unavailable,
    /// Metric not assigned; skipped in scoring.
    NotDefined,
}

/// v3 temporal metric: Report Confidence (RC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportConfidenceV3 {
    /// Reports disagree on cause or impact.
    Unknown,
    /// Significant details published, cause unconfirmed.
    Reasonable,
    /// Acknowledged by the vendor.
    Confirmed,
    /// Metric not assigned; skipped in scoring.
    NotDefined,
}

/// The three v3 temporal metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TemporalV3 {
    /// Exploit-code maturity (E).
    pub exploit_maturity: ExploitMaturityV3,
    /// Remediation Level (RL).
    pub remediation_level: RemediationLevelV3,
    /// Report Confidence (RC).
    pub report_confidence: ReportConfidenceV3,
}

impl Default for TemporalV3 {
    fn default() -> Self {
        Self {
            exploit_maturity: ExploitMaturityV3::NotDefined,
            remediation_level: RemediationLevelV3::NotDefined,
            report_confidence: ReportConfidenceV3::NotDefined,
        }
    }
}

impl TemporalV3 {
    fn maturity_weight(self) -> f64 {
        match self.exploit_maturity {
            ExploitMaturityV3::Unproven => 0.91,
            ExploitMaturityV3::ProofOfConcept => 0.94,
            ExploitMaturityV3::Functional => 0.97,
            ExploitMaturityV3::High | ExploitMaturityV3::NotDefined => 1.0,
        }
    }

    fn remediation_weight(self) -> f64 {
        match self.remediation_level {
            RemediationLevelV3::OfficialFix => 0.95,
            RemediationLevelV3::TemporaryFix => 0.96,
            RemediationLevelV3::Workaround => 0.97,
            RemediationLevelV3::Unavailable | RemediationLevelV3::NotDefined => 1.0,
        }
    }

    fn confidence_weight(self) -> f64 {
        match self.report_confidence {
            ReportConfidenceV3::Unknown => 0.92,
            ReportConfidenceV3::Reasonable => 0.96,
            ReportConfidenceV3::Confirmed | ReportConfidenceV3::NotDefined => 1.0,
        }
    }
}

/// Computes the v3 temporal score: `roundup(base * E * RL * RC)`.
pub fn temporal_score(v: &CvssV3Vector, t: TemporalV3) -> f64 {
    roundup(base_score(v) * t.maturity_weight() * t.remediation_weight() * t.confidence_weight())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec3(s: &str) -> CvssV3Vector {
        s.parse().unwrap()
    }

    #[test]
    fn published_conformance_scores() {
        // Scores from the FIRST CVSS v3.0 examples document / NVD.
        let cases = [
            ("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 9.8), // generic worst RCE
            ("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", 10.0),
            ("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N", 7.5), // CVE-2014-0160 Heartbleed
            ("CVSS:3.0/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N", 6.1), // CVE-2013-1937 XSS
            ("CVSS:3.0/AV:N/AC:L/PR:L/UI:N/S:C/C:L/I:L/A:N", 6.4), // CVE-2013-0375
            ("CVSS:3.0/AV:N/AC:H/PR:N/UI:R/S:C/C:L/I:N/A:N", 3.4), // CVE-2014-3566 POODLE
            ("CVSS:3.0/AV:N/AC:L/PR:H/UI:N/S:C/C:H/I:H/A:H", 9.1), // CVE-2012-1516
            ("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H", 7.5), // CVE-2015-8252
            ("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0), // no impact
            ("CVSS:3.0/AV:L/AC:L/PR:H/UI:N/S:U/C:H/I:H/A:H", 6.7), // local admin full
        ];
        for (s, want) in cases {
            assert_eq!(base_score(&vec3(s)), want, "{s}");
        }
    }

    #[test]
    fn roundup_behaviour() {
        assert_eq!(roundup(4.02), 4.1);
        assert_eq!(roundup(4.0), 4.0);
        assert_eq!(roundup(0.0), 0.0);
        assert_eq!(roundup(9.99), 10.0);
        // Binary-float guard: the nearest f64 to 8.6 is slightly above it
        // and must not round up to 8.7.
        assert_eq!(roundup(8.6_f64), 8.6);
        assert_eq!(roundup(0.1 + 0.2), 0.3);
    }

    #[test]
    fn zero_impact_is_none_severity() {
        let v = vec3("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:N/I:N/A:N");
        assert_eq!(base_score(&v), 0.0);
        assert_eq!(severity(&v), Severity::None);
    }

    #[test]
    fn scope_change_raises_score() {
        let unchanged = vec3("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:L/A:L");
        let changed = vec3("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:L/I:L/A:L");
        assert!(base_score(&changed) > base_score(&unchanged));
    }

    #[test]
    fn temporal_scores() {
        let v = vec3("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H");
        let t = TemporalV3 {
            exploit_maturity: ExploitMaturityV3::Unproven,
            remediation_level: RemediationLevelV3::OfficialFix,
            report_confidence: ReportConfidenceV3::Unknown,
        };
        // 9.8 * 0.91 * 0.95 * 0.92 = 7.7949-> roundup 7.8
        assert_eq!(temporal_score(&v, t), 7.8);
        assert_eq!(temporal_score(&v, TemporalV3::default()), 9.8);
    }

    #[test]
    fn severity_bands() {
        assert_eq!(
            severity(&vec3("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")),
            Severity::Critical
        );
        assert_eq!(
            severity(&vec3("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H")),
            Severity::High
        );
        assert_eq!(
            severity(&vec3("CVSS:3.0/AV:N/AC:H/PR:N/UI:R/S:C/C:L/I:N/A:N")),
            Severity::Low
        );
    }
}
