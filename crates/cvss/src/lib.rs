//! # cvss
//!
//! Complete CVSS **v2** and **v3.0** scoring for the `nvd-clean` workspace:
//! base and temporal score equations implemented from the FIRST
//! specifications, over the vector types defined in [`nvd_model::metrics`].
//!
//! The paper (§4.3) backports v3 severity to v2-only CVEs; this crate is the
//! ground-truth scoring substrate that both the synthetic corpus generator
//! (deriving *true* v3 scores) and the evaluation (banding predicted scores)
//! rely on.
//!
//! ## Example
//!
//! ```
//! use cvss::{v2, v3};
//!
//! let old: nvd_model::metrics::CvssV2Vector = "AV:N/AC:L/Au:N/C:P/I:P/A:P".parse()?;
//! assert_eq!(v2::base_score(&old), 7.5);
//!
//! let new: nvd_model::metrics::CvssV3Vector =
//!     "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H".parse()?;
//! assert_eq!(v3::base_score(&new), 9.8);
//! # Ok::<(), nvd_model::metrics::ParseVectorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod v2;
pub mod v3;

pub use nvd_model::metrics::{CvssV2Vector, CvssV3Vector, ParseVectorError, Severity};

/// Scores a v2 vector and returns both the base score and its severity band.
pub fn score_v2(vector: &CvssV2Vector) -> (f64, Severity) {
    let s = v2::base_score(vector);
    (s, Severity::from_v2_score(s))
}

/// Scores a v3.0 vector and returns both the base score and its severity band.
pub fn score_v3(vector: &CvssV3Vector) -> (f64, Severity) {
    let s = v3::base_score(vector);
    (s, Severity::from_v3_score(s))
}

/// Enumerates every possible v2 base vector (3·3·3·3·3·3 = 729 vectors),
/// useful for exhaustive scoring checks and workload generation.
pub fn all_v2_vectors() -> Vec<CvssV2Vector> {
    use nvd_model::metrics::*;
    let mut out = Vec::with_capacity(729);
    for &av in AccessVectorV2::ALL {
        for &ac in AccessComplexityV2::ALL {
            for &au in AuthenticationV2::ALL {
                for &c in ImpactV2::ALL {
                    for &i in ImpactV2::ALL {
                        for &a in ImpactV2::ALL {
                            out.push(CvssV2Vector::new(av, ac, au, c, i, a));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Enumerates every possible v3.0 base vector (4·2·3·2·2·3·3·3 = 2592
/// vectors).
pub fn all_v3_vectors() -> Vec<CvssV3Vector> {
    use nvd_model::metrics::*;
    let mut out = Vec::with_capacity(2592);
    for &av in AttackVectorV3::ALL {
        for &ac in AttackComplexityV3::ALL {
            for &pr in PrivilegesRequiredV3::ALL {
                for &ui in UserInteractionV3::ALL {
                    for &s in ScopeV3::ALL {
                        for &c in ImpactV3::ALL {
                            for &i in ImpactV3::ALL {
                                for &a in ImpactV3::ALL {
                                    out.push(CvssV3Vector::new(av, ac, pr, ui, s, c, i, a));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerations_are_complete_and_unique() {
        let v2s = all_v2_vectors();
        assert_eq!(v2s.len(), 729);
        let mut strings: Vec<String> = v2s.iter().map(|v| v.to_string()).collect();
        strings.sort();
        strings.dedup();
        assert_eq!(strings.len(), 729);

        let v3s = all_v3_vectors();
        assert_eq!(v3s.len(), 2592);
        let mut strings: Vec<String> = v3s.iter().map(|v| v.to_string()).collect();
        strings.sort();
        strings.dedup();
        assert_eq!(strings.len(), 2592);
    }

    #[test]
    fn exhaustive_score_ranges() {
        for v in all_v2_vectors() {
            let (s, _) = score_v2(&v);
            assert!((0.0..=10.0).contains(&s), "{v} scored {s}");
        }
        for v in all_v3_vectors() {
            let (s, sev) = score_v3(&v);
            assert!((0.0..=10.0).contains(&s), "{v} scored {s}");
            if s == 0.0 {
                assert_eq!(sev, Severity::None);
            }
        }
    }
}
