//! Appendix A.1 / Fig. 5: PCA of the 13-dimensional severity features.
//!
//! The paper projects the feature vectors of ground-truth CVEs to three
//! dimensions and observes that vulnerabilities with Low v2 severity are
//! "scattered in the space, [while] High and Medium in v2 have followed
//! specific and clear patterns". A figure is reproduced here as its
//! numeric skeleton: per (v2 band, v3 band) group sizes, 3-D centroids,
//! and within-group spread, plus a per-v2-band *scatter index* (mean
//! within-group spread over between-group separation).

use std::collections::BTreeMap;

use mlkit::matrix::Matrix;
use mlkit::pca::Pca;
use nvd_clean::severity::FeatureExtractor;
use nvd_model::prelude::{Database, Severity};

use crate::render;

/// One (v2 band, v3 band) group in the projected space.
#[derive(Debug, Clone, PartialEq)]
pub struct PcaGroup {
    /// The input (v2) band.
    pub v2: Severity,
    /// The true v3 band.
    pub v3: Severity,
    /// Group size.
    pub count: usize,
    /// Centroid in the 3-D projection.
    pub centroid: [f64; 3],
    /// Mean Euclidean distance of members to the centroid.
    pub spread: f64,
}

/// The Fig. 5 reproduction output.
#[derive(Debug, Clone, PartialEq)]
pub struct PcaStudy {
    /// Variance captured by the three components.
    pub explained_variance: [f64; 3],
    /// Per-group statistics.
    pub groups: Vec<PcaGroup>,
    /// Scatter index per v2 band: the band's mean member distance to its
    /// own centroid, normalised by the global mean distance to the global
    /// centroid (higher = more scattered in the projected space, the
    /// paper's observation for Low).
    pub scatter_index: BTreeMap<Severity, f64>,
}

/// Runs the PCA study over every dual-scored CVE in the database.
///
/// Returns `None` when fewer than 10 ground-truth CVEs exist.
pub fn pca_study(db: &Database) -> Option<PcaStudy> {
    let ground: Vec<_> = db
        .iter()
        .filter(|e| e.cvss_v2.is_some() && e.cvss_v3.is_some())
        .collect();
    if ground.len() < 10 {
        return None;
    }
    let extractor = FeatureExtractor::fit(ground.iter().copied());
    let mut rows = Vec::with_capacity(ground.len());
    for e in &ground {
        rows.extend_from_slice(&extractor.extract(e).expect("has v2"));
    }
    let x = Matrix::from_vec(ground.len(), nvd_clean::severity::FEATURE_DIM, rows);
    let pca = Pca::fit(&x, 3).ok()?;
    let projected = pca.transform(&x);

    // Group members by (v2, v3) band.
    let mut members: BTreeMap<(Severity, Severity), Vec<usize>> = BTreeMap::new();
    for (i, e) in ground.iter().enumerate() {
        let v2 = e.severity_v2().expect("filtered");
        let v3 = e.severity_v3().expect("filtered");
        members.entry((v2, v3)).or_default().push(i);
    }

    let mut groups = Vec::new();
    for ((v2, v3), idx) in &members {
        let (centroid, spread) = group_stats(&projected, idx);
        groups.push(PcaGroup {
            v2: *v2,
            v3: *v3,
            count: idx.len(),
            centroid,
            spread,
        });
    }

    // Scatter index per v2 band: band spread over global spread.
    let all_indices: Vec<usize> = (0..ground.len()).collect();
    let global_spread = group_stats(&projected, &all_indices).1.max(1e-12);
    let mut scatter_index = BTreeMap::new();
    for v2 in [Severity::Low, Severity::Medium, Severity::High] {
        let idx: Vec<usize> = ground
            .iter()
            .enumerate()
            .filter(|(_, e)| e.severity_v2() == Some(v2))
            .map(|(i, _)| i)
            .collect();
        if idx.len() >= 3 {
            scatter_index.insert(v2, group_stats(&projected, &idx).1 / global_spread);
        }
    }

    let ev = pca.explained_variance();
    Some(PcaStudy {
        explained_variance: [ev[0], ev[1], ev[2]],
        groups,
        scatter_index,
    })
}

/// Centroid and mean member distance of the selected rows of a 3-column
/// projection: one gather into a member sub-matrix, a batched
/// `column_means`, and a single distance pass. Empty selections yield
/// zeros.
fn group_stats(projected: &Matrix, idx: &[usize]) -> ([f64; 3], f64) {
    if idx.is_empty() {
        return ([0.0; 3], 0.0);
    }
    let mut data = Vec::with_capacity(idx.len() * 3);
    for &i in idx {
        data.extend_from_slice(projected.row(i));
    }
    let sub = Matrix::from_vec(idx.len(), 3, data);
    let means = sub.column_means();
    let centroid = [means[0], means[1], means[2]];
    let spread = (0..sub.rows())
        .map(|r| {
            sub.row(r)
                .iter()
                .zip(&centroid)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt()
        })
        .sum::<f64>()
        / idx.len() as f64;
    (centroid, spread)
}

/// Renders the Fig. 5 skeleton.
pub fn render_pca(study: &PcaStudy) -> String {
    let body: Vec<Vec<String>> = study
        .groups
        .iter()
        .map(|g| {
            vec![
                format!("{:?}", g.v2),
                format!("{:?}", g.v3),
                g.count.to_string(),
                format!(
                    "({:.2}, {:.2}, {:.2})",
                    g.centroid[0], g.centroid[1], g.centroid[2]
                ),
                render::f2(g.spread),
            ]
        })
        .collect();
    let mut out = render::table(&["v2", "v3", "n", "centroid (PC1..3)", "spread"], &body);
    out.push('\n');
    for (band, idx) in &study.scatter_index {
        out.push_str(&format!("scatter index {band:?}: {idx:.3}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Experiments;

    #[test]
    fn scatter_indices_are_sane_and_components_ordered() {
        // These assertions are corpus-invariant; all three tests share the
        // disclosure fixture key so the cache computes nothing extra.
        let e = Experiments::shared(0.02, 77);
        let study = pca_study(&e.cleaned).expect("enough ground truth");
        // Fig. 5's qualitative ordering (Low most scattered) stems from the
        // real NVD's feature geometry and is not guaranteed at reduced
        // synthetic scale; the reproducible invariants are that every band
        // yields a finite positive index and PCA orders its components.
        for (band, idx) in &study.scatter_index {
            assert!(
                idx.is_finite() && (0.05..5.0).contains(idx),
                "{band:?}: scatter index {idx}"
            );
        }
        assert!(study.scatter_index.len() >= 2, "{:?}", study.scatter_index);
        assert!(study.explained_variance[0] >= study.explained_variance[1]);
        assert!(study.explained_variance[1] >= study.explained_variance[2]);
    }

    #[test]
    fn groups_cover_all_observed_transitions() {
        let e = Experiments::shared(0.02, 77);
        let study = pca_study(&e.cleaned).expect("enough ground truth");
        let total: usize = study.groups.iter().map(|g| g.count).sum();
        let ground = e
            .cleaned
            .iter()
            .filter(|x| x.cvss_v2.is_some() && x.cvss_v3.is_some())
            .count();
        assert_eq!(total, ground);
    }

    #[test]
    fn tiny_database_returns_none() {
        let db = Database::new();
        assert!(pca_study(&db).is_none());
    }

    #[test]
    fn renderer_does_not_panic() {
        let e = Experiments::shared(0.02, 77);
        let study = pca_study(&e.cleaned).unwrap();
        let s = render_pca(&study);
        assert!(s.contains("scatter index"));
    }
}
