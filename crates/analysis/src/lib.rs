//! # nvd-analysis
//!
//! Case-study analyses and the paper-reproduction harness for the
//! `nvd-clean` workspace — the Rust reproduction of *"Cleaning the NVD"*
//! (Anwar et al., DSN 2021).
//!
//! [`Experiments`] generates a corpus, runs the full cleaning pipeline, and
//! hands the result to one module per paper artefact:
//!
//! * [`disclosure_study`] — Fig. 1 (lag CDF), Table 8 (top dates), Fig. 2
//!   (day-of-week), Fig. 4 (average lag by severity);
//! * [`model_study`] — Tables 4–7 and 13–15 (severity models);
//! * [`severity_study`] — Table 9 and Fig. 3 (distributions);
//! * [`types_study`] — Table 10 (top types by severity);
//! * [`vendor_study`] — Tables 3, 11, 12, 16 (names);
//! * [`pca_study`] — Fig. 5 (feature-space structure);
//! * [`quality_study`] — the typed quality ledger (issue counts, corpus
//!   scores, decile histograms) behind `paper-repro --quality-md`.
//!
//! The `paper-repro` binary prints every table and figure in paper order.
//!
//! ## Example
//!
//! ```
//! use nvd_analysis::Experiments;
//!
//! // `shared` caches the (scale, seed) fixture process-wide: the corpus is
//! // generated and cleaned once, later callers get the same `Arc`.
//! let exps = Experiments::shared(0.005, 1);
//! let table9 = nvd_analysis::severity_study::severity_distribution(&exps);
//! assert!(!table9.v2.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod disclosure_study;
pub mod model_study;
pub mod pca_study;
pub mod quality_study;
pub mod render;
pub mod severity_study;
pub mod types_study;
pub mod vendor_study;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use nvd_clean::cleaner::{CleanOptions, CleanReport, Cleaner};
use nvd_clean::names::OracleVerifier;
use nvd_clean::quality::QualityLedger;
use nvd_clean::severity::{BackportOptions, TrainProfile};
use nvd_model::prelude::Database;
use nvd_synth::{generate, SynthConfig, SynthCorpus};

/// A complete experimental setting: synthetic corpus, rectified database,
/// and the pipeline report all case studies read from.
#[derive(Debug)]
pub struct Experiments {
    /// The generated corpus (original database + archive + truth).
    pub corpus: SynthCorpus,
    /// The rectified database.
    pub cleaned: Database,
    /// The pipeline's findings.
    pub report: CleanReport,
    /// The typed per-CVE quality ledger the stage-detectors emitted.
    pub ledger: QualityLedger,
}

impl Experiments {
    /// Generates a corpus at `scale` and cleans it with the given training
    /// profile for the severity models.
    pub fn run(scale: f64, seed: u64, profile: TrainProfile) -> Self {
        let corpus = generate(&SynthConfig::with_scale(scale, seed));
        let cleaner = Cleaner::new(CleanOptions {
            backport: BackportOptions {
                profile,
                seed,
                ..BackportOptions::default()
            },
            ..CleanOptions::default()
        });
        let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
        let out = cleaner.clean(&corpus.database, &corpus.archive, &oracle);
        Self {
            corpus,
            cleaned: out.database,
            report: out.report,
            ledger: out.ledger,
        }
    }

    /// [`Experiments::run`] with the fast training profile (tests, CI).
    pub fn run_fast(scale: f64, seed: u64) -> Self {
        Self::run(scale, seed, TrainProfile::Fast)
    }

    /// A process-wide cached [`Experiments::run_fast`] keyed by
    /// `(scale, seed)`.
    ///
    /// The first caller for a key generates and cleans the corpus; every
    /// later caller gets the same `Arc` back. This is the shared test
    /// fixture: the `nvd-analysis` suite used to regenerate the full
    /// experiment set per test (~4 min wall clock), now each distinct
    /// `(scale, seed)` is computed once per process. Generation is a pure
    /// function of the key, so a cache hit is indistinguishable from a
    /// fresh run (asserted by `shared_cache_hit_matches_fresh_run`).
    ///
    /// Concurrent first callers for the *same* key block on one
    /// computation (per-key `OnceLock`); different keys compute
    /// independently.
    pub fn shared(scale: f64, seed: u64) -> Arc<Self> {
        type Slot = Arc<OnceLock<Arc<Experiments>>>;
        static FIXTURES: OnceLock<Mutex<BTreeMap<(u64, u64), Slot>>> = OnceLock::new();
        let slot: Slot = {
            let map = FIXTURES.get_or_init(Mutex::default);
            let mut map = map
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            map.entry((scale.to_bits(), seed)).or_default().clone()
        };
        slot.get_or_init(|| Arc::new(Self::run_fast(scale, seed)))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_wire_everything_together() {
        let e = Experiments::shared(0.005, 55);
        assert_eq!(e.corpus.database.len(), e.cleaned.len());
        assert!(e.report.severity.is_some());
        assert_eq!(e.report.disclosure.len(), e.cleaned.len());
    }

    #[test]
    fn shared_cache_returns_the_same_fixture() {
        let a = Experiments::shared(0.005, 55);
        let b = Experiments::shared(0.005, 55);
        assert!(Arc::ptr_eq(&a, &b), "cache must hand back the same Arc");
        let other = Experiments::shared(0.005, 56);
        assert!(!Arc::ptr_eq(&a, &other), "distinct keys are distinct runs");
    }

    #[test]
    fn shared_cache_hit_matches_fresh_run() {
        // A cache hit must be indistinguishable from recomputing: same
        // corpus digest, same cleaning outcome.
        let cached = Experiments::shared(0.005, 55);
        let fresh = Experiments::run_fast(0.005, 55);
        assert_eq!(cached.corpus.digest(), fresh.corpus.digest());
        assert_eq!(
            cached.report.disclosure, fresh.report.disclosure,
            "disclosure estimates must match"
        );
        let (c, f) = (
            cached.report.severity.as_ref().unwrap(),
            fresh.report.severity.as_ref().unwrap(),
        );
        assert_eq!(c.chosen, f.chosen);
        assert_eq!(c.predictions, f.predictions);
    }
}
