//! §4.3 result tables: Table 4 (ground-truth transitions), Table 5 (model
//! errors), Table 6 (backport transitions), Table 7 (accuracies), and the
//! Appendix sanity matrices (Tables 13–15).

use mlkit::metrics::ConfusionMatrix;
use nvd_clean::severity::{BackportOutcome, ModelKind};
use nvd_model::prelude::Severity;

use crate::render;

/// Renders a v2 → v3 transition matrix in the paper's row/column layout.
pub fn render_transition(title: &str, m: &ConfusionMatrix) -> String {
    let rows: Vec<Vec<String>> = (0..3)
        .map(|r| {
            let mut row = vec![["L", "M", "H"][r].to_owned()];
            for c in 0..4 {
                row.push(format!("{} ({:.2}%)", m.count(r, c), m.row_percent(r, c)));
            }
            row
        })
        .collect();
    format!(
        "{title}\n{}",
        render::table(&["v2\\v3", "L", "M", "H", "C"], &rows)
    )
}

/// Renders Table 5: AE and AER per model.
pub fn render_model_errors(outcome: &BackportOutcome) -> String {
    let mut header = vec!["metric"];
    let mut aer = vec!["AER (%)".to_owned()];
    let mut ae = vec!["AE".to_owned()];
    for kind in ModelKind::ALL {
        let Some(r) = outcome.reports.get(&kind) else {
            continue;
        };
        header.push(kind.label());
        aer.push(render::f2(r.aer_percent));
        ae.push(render::f2(r.ae));
    }
    render::table(&header, &[aer, ae])
}

/// Renders Table 7: overall and per-input-class accuracy per model.
pub fn render_model_accuracy(outcome: &BackportOutcome) -> String {
    let mut rows = Vec::new();
    for kind in ModelKind::ALL {
        let Some(r) = outcome.reports.get(&kind) else {
            continue;
        };
        let by = |band: Severity| {
            r.accuracy_by_v2
                .get(&band)
                .map(|&a| render::pct(a))
                .unwrap_or_else(|| "-".into())
        };
        rows.push(vec![
            kind.label().to_owned(),
            render::pct(r.overall_accuracy),
            by(Severity::Low),
            by(Severity::Medium),
            by(Severity::High),
        ]);
    }
    render::table(&["model", "overall", "L", "M", "H"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Experiments;

    #[test]
    fn tables_render_for_a_real_outcome() {
        // Invariant over the corpus: reuse the big shared fixture rather
        // than paying for a dedicated (scale, seed) key.
        let e = Experiments::shared(0.02, 77);
        let out = e.report.severity.as_ref().unwrap();
        let t4 = render_transition("Table 4", &out.ground_truth_transition);
        assert!(t4.contains("v2\\v3"));
        let t5 = render_model_errors(out);
        assert!(t5.contains("AER"));
        let t7 = render_model_accuracy(out);
        assert!(t7.contains("overall"));
        let t6 = render_transition("Table 6", &out.backport_transition);
        assert!(t6.contains("Table 6"));
        let _ = render_transition("Table 13", &out.full_prediction_transition);
        let _ = render_transition("Table 14", &out.test_ground_truth_transition);
        let _ = render_transition("Table 15", &out.test_prediction_transition);
    }

    #[test]
    fn chosen_model_has_best_accuracy() {
        let e = Experiments::shared(0.02, 77);
        let out = e.report.severity.as_ref().unwrap();
        let best = out.reports[&out.chosen].overall_accuracy;
        for r in out.reports.values() {
            assert!(r.overall_accuracy <= best + 1e-12);
        }
    }
}
