//! §5.2 severity case studies: Table 9 (distribution) and Fig. 3 (yearly
//! proportions under v2 / labelled v3 / predicted v3).

use std::collections::BTreeMap;

use nvd_model::prelude::Severity;

use crate::render;
use crate::Experiments;

/// Table 9: severity shares over all CVEs, v2 vs rectified v3.
#[derive(Debug, Clone, PartialEq)]
pub struct SeverityDistribution {
    /// v2 shares for Low/Medium/High.
    pub v2: BTreeMap<Severity, f64>,
    /// Rectified-v3 shares for Low/Medium/High/Critical.
    pub pv3: BTreeMap<Severity, f64>,
}

/// Computes Table 9.
pub fn severity_distribution(exps: &Experiments) -> SeverityDistribution {
    let mut v2: BTreeMap<Severity, usize> = BTreeMap::new();
    let mut pv3: BTreeMap<Severity, usize> = BTreeMap::new();
    let mut n_v2 = 0usize;
    let mut n_pv3 = 0usize;
    for e in exps.cleaned.iter() {
        if let Some(band) = e.severity_v2() {
            *v2.entry(band).or_insert(0) += 1;
            n_v2 += 1;
        }
        if let Some(band) = exps.report.effective_v3_severity(&exps.cleaned, &e.id) {
            if band != Severity::None {
                *pv3.entry(band).or_insert(0) += 1;
                n_pv3 += 1;
            }
        }
    }
    let norm = |m: BTreeMap<Severity, usize>, n: usize| {
        m.into_iter()
            .map(|(k, c)| (k, c as f64 / n.max(1) as f64))
            .collect()
    };
    SeverityDistribution {
        v2: norm(v2, n_v2),
        pv3: norm(pv3, n_pv3),
    }
}

/// Renders Table 9.
pub fn render_distribution(d: &SeverityDistribution) -> String {
    let bands = [
        Severity::Low,
        Severity::Medium,
        Severity::High,
        Severity::Critical,
    ];
    let rows: Vec<Vec<String>> = bands
        .iter()
        .map(|b| {
            vec![
                format!("{b:?}"),
                d.v2.get(b)
                    .map(|&x| render::pct(x))
                    .unwrap_or_else(|| "N.A.".into()),
                d.pv3
                    .get(b)
                    .map(|&x| render::pct(x))
                    .unwrap_or_else(|| "0.00%".into()),
            ]
        })
        .collect();
    render::table(&["label", "v2", "predicted v3"], &rows)
}

/// One Fig. 3 cell: a year's severity proportions under one scoring view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct YearBands {
    /// CVEs carrying this view's score in the year.
    pub total: usize,
    /// Shares of Low/Medium/High/Critical (None folded into Low).
    pub shares: [f64; 4],
}

/// Fig. 3: per-year proportions for v2, labelled v3, and rectified v3.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct YearlySeverity {
    /// Rows keyed by year.
    pub years: BTreeMap<i32, [YearBands; 3]>,
}

fn band4(s: Severity) -> usize {
    match s {
        Severity::None | Severity::Low => 0,
        Severity::Medium => 1,
        Severity::High => 2,
        Severity::Critical => 3,
    }
}

/// Computes Fig. 3.
pub fn yearly_severity(exps: &Experiments) -> YearlySeverity {
    let mut counts: BTreeMap<i32, [[usize; 4]; 3]> = BTreeMap::new();
    for e in exps.cleaned.iter() {
        let year = e.published.year();
        let slot = counts.entry(year).or_insert([[0; 4]; 3]);
        if let Some(b) = e.severity_v2() {
            slot[0][band4(b)] += 1;
        }
        if let Some(b) = e.severity_v3() {
            slot[1][band4(b)] += 1;
        }
        if let Some(b) = exps.report.effective_v3_severity(&exps.cleaned, &e.id) {
            slot[2][band4(b)] += 1;
        }
    }
    YearlySeverity {
        years: counts
            .into_iter()
            .map(|(year, views)| {
                let mut out: [YearBands; 3] = Default::default();
                for (v, bands) in views.iter().enumerate() {
                    let total: usize = bands.iter().sum();
                    let mut shares = [0.0; 4];
                    if total > 0 {
                        for (i, &c) in bands.iter().enumerate() {
                            shares[i] = c as f64 / total as f64;
                        }
                    }
                    out[v] = YearBands { total, shares };
                }
                (year, out)
            })
            .collect(),
    }
}

/// Renders Fig. 3 as one row per (year, view).
pub fn render_yearly(y: &YearlySeverity) -> String {
    let mut rows = Vec::new();
    for (year, views) in &y.years {
        for (label, bands) in ["v2", "v3", "pv3"].iter().zip(views) {
            rows.push(vec![
                format!("'{:02}", year % 100),
                (*label).to_owned(),
                bands.total.to_string(),
                render::pct(bands.shares[0]),
                render::pct(bands.shares[1]),
                render::pct(bands.shares[2]),
                render::pct(bands.shares[3]),
            ]);
        }
    }
    render::table(
        &["year", "view", "n", "Low", "Medium", "High", "Critical"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exps() -> std::sync::Arc<Experiments> {
        Experiments::shared(0.02, 78)
    }

    #[test]
    fn distribution_skews_upward_under_v3() {
        let e = exps();
        let d = severity_distribution(&e);
        let v2_high = d.v2.get(&Severity::High).copied().unwrap_or(0.0);
        let pv3_high_plus = d.pv3.get(&Severity::High).copied().unwrap_or(0.0)
            + d.pv3.get(&Severity::Critical).copied().unwrap_or(0.0);
        // Paper Table 9: 36.92% (v2 H) vs 60.08% (pv3 H+C).
        assert!(
            pv3_high_plus > v2_high,
            "pv3 H+C {pv3_high_plus} vs v2 H {v2_high}"
        );
        // Low shrinks under v3 (8.25% → 1.62%).
        let v2_low = d.v2.get(&Severity::Low).copied().unwrap_or(0.0);
        let pv3_low = d.pv3.get(&Severity::Low).copied().unwrap_or(0.0);
        assert!(pv3_low < v2_low, "pv3 L {pv3_low} vs v2 L {v2_low}");
    }

    #[test]
    fn distribution_shares_sum_to_one() {
        let e = exps();
        let d = severity_distribution(&e);
        let sum_v2: f64 = d.v2.values().sum();
        let sum_pv3: f64 = d.pv3.values().sum();
        assert!((sum_v2 - 1.0).abs() < 1e-9);
        assert!((sum_pv3 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn labelled_v3_is_sparse_before_2013() {
        let e = exps();
        let y = yearly_severity(&e);
        for (year, views) in &y.years {
            if *year < 2013 && *year >= 1999 {
                assert!(
                    views[1].total <= 3,
                    "year {year}: labelled v3 count {}",
                    views[1].total
                );
                // pv3 covers everything v2 covers.
                assert_eq!(views[2].total, views[0].total, "year {year}");
            }
        }
    }

    #[test]
    fn critical_share_declines_over_time() {
        let e = exps();
        let y = yearly_severity(&e);
        let avg_crit = |from: i32, to: i32| {
            let mut s = 0.0;
            let mut n = 0;
            for (year, views) in &y.years {
                if (from..=to).contains(year) && views[2].total > 20 {
                    s += views[2].shares[3];
                    n += 1;
                }
            }
            s / n.max(1) as f64
        };
        let early = avg_crit(2000, 2007);
        let late = avg_crit(2012, 2017);
        // Fig. 3: ~30-40% critical in the early 2000s, <20% from 2011.
        assert!(early > late, "early {early} vs late {late}");
    }

    #[test]
    fn renderers_do_not_panic() {
        let e = exps();
        let _ = render_distribution(&severity_distribution(&e));
        let _ = render_yearly(&yearly_severity(&e));
    }
}
