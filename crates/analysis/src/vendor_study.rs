//! §5.4 vendor/product case studies: Table 3 (inconsistency scale across
//! databases), Table 11 (top vendors before/after correction), Table 12
//! (mislabeled CVEs by severity), Table 16 (sampled mislabeled CVEs).

use std::collections::BTreeMap;

use nvd_model::prelude::{CveId, Database, Severity, VendorName};
use nvd_synth::sidedb::SideDatabase;

use crate::render;
use crate::Experiments;

/// One database row of Table 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameScaleRow {
    /// Database name.
    pub database: String,
    /// Distinct vendor names.
    pub vendors: usize,
    /// Vendor names impacted by a discrepancy.
    pub vendors_impacted: usize,
    /// Consistent names the impacted ones consolidate onto.
    pub vendors_consistent: usize,
}

/// Table 3: the NVD row plus the two side databases.
pub fn name_scale(exps: &Experiments) -> Vec<NameScaleRow> {
    let mapping = &exps.report.names.mapping;
    let nvd = NameScaleRow {
        database: "NVD".to_owned(),
        vendors: exps.report.names.vendors_before,
        vendors_impacted: exps.report.names.vendor_names_impacted(),
        vendors_consistent: mapping.consistent_vendor_targets(),
    };
    let side = |db: &SideDatabase| {
        let mapped = mapping.count_mappable(db.vendors.iter());
        let targets: usize = db
            .vendors
            .iter()
            .filter_map(|v| mapping.vendor.get(v))
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        NameScaleRow {
            database: db.name.clone(),
            vendors: db.len(),
            vendors_impacted: mapped,
            vendors_consistent: targets,
        }
    };
    vec![
        nvd,
        side(&exps.corpus.security_focus),
        side(&exps.corpus.security_tracker),
    ]
}

/// Renders Table 3.
pub fn render_name_scale(rows: &[NameScaleRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.database.clone(),
                r.vendors.to_string(),
                r.vendors_impacted.to_string(),
                r.vendors_consistent.to_string(),
            ]
        })
        .collect();
    render::table(
        &["database", "# vendors", "# impacted", "# consistent"],
        &body,
    )
}

/// One Table 11 row: a vendor with its CVE (or product) count and share.
#[derive(Debug, Clone, PartialEq)]
pub struct VendorRankRow {
    /// Vendor name.
    pub vendor: VendorName,
    /// Count of CVEs or products.
    pub count: usize,
    /// Share of the total.
    pub share: f64,
}

/// Top vendors by associated CVEs.
pub fn top_vendors_by_cves(db: &Database, k: usize) -> Vec<VendorRankRow> {
    let by_vendor = db.cves_by_vendor();
    let total = db.len().max(1);
    let mut rows: Vec<VendorRankRow> = by_vendor
        .into_iter()
        .map(|(v, ids)| VendorRankRow {
            vendor: v.clone(),
            count: ids.len(),
            share: ids.len() as f64 / total as f64,
        })
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.vendor.cmp(&b.vendor)));
    rows.truncate(k);
    rows
}

/// Top vendors by distinct affected products.
pub fn top_vendors_by_products(db: &Database, k: usize) -> Vec<VendorRankRow> {
    let by_vendor = db.products_by_vendor();
    let total: usize = by_vendor.values().map(|p| p.len()).sum();
    let mut rows: Vec<VendorRankRow> = by_vendor
        .into_iter()
        .map(|(v, products)| VendorRankRow {
            vendor: v.clone(),
            count: products.len(),
            share: products.len() as f64 / total.max(1) as f64,
        })
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.vendor.cmp(&b.vendor)));
    rows.truncate(k);
    rows
}

/// Renders a Table 11 half, before vs after side by side.
pub fn render_vendor_ranks(
    title: &str,
    after: &[VendorRankRow],
    before: &[VendorRankRow],
) -> String {
    let before_by_name: BTreeMap<&VendorName, &VendorRankRow> =
        before.iter().map(|r| (&r.vendor, r)).collect();
    let body: Vec<Vec<String>> = after
        .iter()
        .map(|r| {
            let b = before_by_name.get(&r.vendor);
            vec![
                r.vendor.as_str().to_owned(),
                r.count.to_string(),
                render::pct(r.share),
                b.map(|x| x.count.to_string()).unwrap_or_else(|| "-".into()),
                b.map(|x| render::pct(x.share))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    format!(
        "{title}\n{}",
        render::table(
            &["vendor", "# after", "% after", "# before", "% before"],
            &body
        )
    )
}

/// Table 12: mislabeled-name CVEs broken down by severity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MislabeledBreakdown {
    /// Vendor-mislabeled CVEs by v2 band.
    pub vendor_v2: BTreeMap<Severity, usize>,
    /// Vendor-mislabeled CVEs by rectified-v3 band.
    pub vendor_pv3: BTreeMap<Severity, usize>,
    /// Product-mislabeled CVEs by v2 band.
    pub product_v2: BTreeMap<Severity, usize>,
    /// Product-mislabeled CVEs by rectified-v3 band.
    pub product_pv3: BTreeMap<Severity, usize>,
}

/// Computes Table 12 from the pipeline's apply statistics.
pub fn mislabeled_breakdown(exps: &Experiments) -> MislabeledBreakdown {
    let mut out = MislabeledBreakdown::default();
    let add = |map: &mut BTreeMap<Severity, usize>, band: Option<Severity>| {
        if let Some(b) = band {
            if b != Severity::None {
                *map.entry(b).or_insert(0) += 1;
            }
        }
    };
    for id in &exps.report.names.apply_stats.cves_with_vendor_fixes {
        let entry = exps.cleaned.get(id).expect("fixed CVE exists");
        add(&mut out.vendor_v2, entry.severity_v2());
        add(
            &mut out.vendor_pv3,
            exps.report.effective_v3_severity(&exps.cleaned, id),
        );
    }
    for id in &exps.report.names.apply_stats.cves_with_product_fixes {
        let entry = exps.cleaned.get(id).expect("fixed CVE exists");
        add(&mut out.product_v2, entry.severity_v2());
        add(
            &mut out.product_pv3,
            exps.report.effective_v3_severity(&exps.cleaned, id),
        );
    }
    out
}

/// Renders Table 12.
pub fn render_mislabeled(m: &MislabeledBreakdown) -> String {
    let bands = [
        Severity::Low,
        Severity::Medium,
        Severity::High,
        Severity::Critical,
    ];
    let cell = |map: &BTreeMap<Severity, usize>, b: Severity| {
        map.get(&b).copied().unwrap_or(0).to_string()
    };
    let body: Vec<Vec<String>> = bands
        .iter()
        .map(|&b| {
            vec![
                format!("{b:?}"),
                if b == Severity::Critical {
                    "NA".into()
                } else {
                    cell(&m.vendor_v2, b)
                },
                cell(&m.vendor_pv3, b),
                if b == Severity::Critical {
                    "NA".into()
                } else {
                    cell(&m.product_v2, b)
                },
                cell(&m.product_pv3, b),
            ]
        })
        .collect();
    render::table(
        &[
            "severity",
            "vendor v2",
            "vendor pv3",
            "product v2",
            "product pv3",
        ],
        &body,
    )
}

/// One Table 16 row: a sampled mislabeled-vendor CVE.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSample {
    /// The CVE.
    pub id: CveId,
    /// The inconsistent vendor name it was recorded under.
    pub recorded_vendor: VendorName,
    /// Its v2 severity.
    pub severity_v2: Option<Severity>,
    /// Leading words of its description.
    pub description: String,
}

/// Table 16: a deterministic sample of CVEs that had mislabeled vendors,
/// preferring higher-severity ones (as the paper's sample skews High).
pub fn case_samples(exps: &Experiments, k: usize) -> Vec<CaseSample> {
    let alias_map: BTreeMap<VendorName, VendorName> = exps.report.names.mapping.vendor.clone();
    let mut rows: Vec<CaseSample> = Vec::new();
    for id in &exps.report.names.apply_stats.cves_with_vendor_fixes {
        // The ORIGINAL entry still shows the inconsistent name.
        let original = exps.corpus.database.get(id).expect("exists");
        let Some(recorded) = original
            .vendors()
            .find(|v| alias_map.contains_key(*v))
            .cloned()
        else {
            continue;
        };
        let description = original
            .primary_description()
            .unwrap_or_default()
            .split_whitespace()
            .take(8)
            .collect::<Vec<_>>()
            .join(" ");
        rows.push(CaseSample {
            id: *id,
            recorded_vendor: recorded,
            severity_v2: original.severity_v2(),
            description,
        });
    }
    rows.sort_by(|a, b| b.severity_v2.cmp(&a.severity_v2).then(a.id.cmp(&b.id)));
    rows.truncate(k);
    rows
}

/// Renders Table 16.
pub fn render_case_samples(rows: &[CaseSample]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.id.to_string(),
                r.recorded_vendor.as_str().to_owned(),
                r.severity_v2
                    .map(|s| format!("{s:?}"))
                    .unwrap_or_else(|| "-".into()),
                r.description.clone(),
            ]
        })
        .collect();
    render::table(&["CVE", "vendor", "severity (v2)", "description"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exps() -> std::sync::Arc<Experiments> {
        Experiments::shared(0.02, 80)
    }

    #[test]
    fn table3_impacted_fraction_near_ten_percent() {
        let e = exps();
        let rows = name_scale(&e);
        let nvd = &rows[0];
        let frac = nvd.vendors_impacted as f64 / nvd.vendors as f64;
        // Paper: 1,835 / 18,991 ≈ 9.7%.
        assert!((0.02..0.25).contains(&frac), "impacted fraction {frac}");
        assert!(nvd.vendors_consistent < nvd.vendors_impacted);
    }

    #[test]
    fn side_databases_are_partially_mappable() {
        let e = exps();
        let rows = name_scale(&e);
        let sf = &rows[1];
        let st = &rows[2];
        assert!(sf.vendors_impacted > 0, "SF must contain mappable names");
        // Paper: SF carries far more inconsistent names than ST (2,094 vs
        // 110). At reduced scale the count ordering is the stable property;
        // the 8%-vs-3% rate gap needs the full-size vendor lists.
        assert!(
            st.vendors_impacted <= sf.vendors_impacted,
            "SF {} vs ST {}",
            sf.vendors_impacted,
            st.vendors_impacted
        );
    }

    #[test]
    fn top_vendor_order_stable_but_counts_grow() {
        let e = exps();
        let before = top_vendors_by_cves(&e.corpus.database, 10);
        let after = top_vendors_by_cves(&e.cleaned, 10);
        // Correction consolidates aliases into canonical vendors: counts
        // never shrink for the leaders.
        let before_by: BTreeMap<&VendorName, usize> =
            before.iter().map(|r| (&r.vendor, r.count)).collect();
        let mut grew = 0;
        for r in &after {
            if let Some(&b) = before_by.get(&r.vendor) {
                assert!(r.count >= b, "{} shrank {b} → {}", r.vendor, r.count);
                if r.count > b {
                    grew += 1;
                }
            }
        }
        assert!(grew >= 1, "at least one top vendor must gain CVEs");
    }

    #[test]
    fn mislabeled_cves_include_high_severity() {
        let e = exps();
        let m = mislabeled_breakdown(&e);
        let vendor_total: usize = m.vendor_v2.values().sum();
        assert!(vendor_total > 0, "some vendor-mislabeled CVEs expected");
        // Paper Table 12: mislabeled CVEs are not confined to Low severity.
        let high_plus = m.vendor_v2.get(&Severity::High).copied().unwrap_or(0);
        assert!(high_plus > 0, "{m:?}");
    }

    #[test]
    fn case_samples_use_original_recorded_names() {
        let e = exps();
        let samples = case_samples(&e, 10);
        assert!(!samples.is_empty());
        let alias_map = e.report.names.mapping.vendor.clone();
        for s in &samples {
            assert!(
                alias_map.contains_key(&s.recorded_vendor),
                "{} not an alias",
                s.recorded_vendor
            );
        }
    }

    #[test]
    fn renderers_do_not_panic() {
        let e = exps();
        let _ = render_name_scale(&name_scale(&e));
        let _ = render_vendor_ranks(
            "CVEs",
            &top_vendors_by_cves(&e.cleaned, 10),
            &top_vendors_by_cves(&e.corpus.database, 10),
        );
        let _ = render_mislabeled(&mislabeled_breakdown(&e));
        let _ = render_case_samples(&case_samples(&e, 10));
    }
}
