//! §5.1 disclosure-date case studies: Fig. 1 (lag CDF), Table 8 (top
//! dates), Fig. 2 (day-of-week), Fig. 4 (average lag by severity).

use std::collections::BTreeMap;

use nvd_clean::disclosure::DisclosureEstimate;
use nvd_clean::LagSummary;
use nvd_model::prelude::{CveId, Database, Date, Severity, Weekday};

use crate::render;
use crate::Experiments;

/// Fig. 1: the lag-time CDF plus its headline fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct LagCdf {
    /// `(lag, CDF)` sample points at the paper's x-axis ticks.
    pub points: Vec<(i32, f64)>,
    /// Share of CVEs entering the NVD the day they disclose (paper ≈38%).
    pub zero_fraction: f64,
    /// Share within a week (lag ≤ 7 days; paper ≈70%).
    pub within_week_fraction: f64,
    /// Share lagging over a week (paper ≈28%).
    pub over_week_fraction: f64,
}

/// Computes Fig. 1 from the pipeline's estimates.
pub fn lag_cdf(exps: &Experiments) -> LagCdf {
    let summary = LagSummary::compute(&exps.cleaned, &exps.report.disclosure);
    let ticks = [
        0, 6, 7, 14, 30, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500, 600, 750, 900, 1100,
        1400, 1700, 2000, 2372,
    ];
    LagCdf {
        points: ticks.iter().map(|&t| (t, summary.cdf(t))).collect(),
        zero_fraction: summary.zero_fraction,
        within_week_fraction: summary.within_week_fraction,
        over_week_fraction: summary.over_week_fraction,
    }
}

/// Renders Fig. 1 as a text series.
pub fn render_lag_cdf(cdf: &LagCdf) -> String {
    let rows: Vec<Vec<String>> = cdf
        .points
        .iter()
        .map(|(lag, p)| vec![lag.to_string(), render::pct(*p)])
        .collect();
    format!(
        "{}\nzero-lag: {}   ≤7 days: {}   >7 days: {}\n",
        render::table(&["lag (days)", "CDF"], &rows),
        render::pct(cdf.zero_fraction),
        render::pct(cdf.within_week_fraction),
        render::pct(cdf.over_week_fraction),
    )
}

/// Fraction of CVEs per v2 band whose estimated disclosure precedes their
/// publication date (§4.1: 37% / 41% / 65% for L/M/H).
pub fn improved_fraction_by_v2(exps: &Experiments) -> BTreeMap<Severity, f64> {
    let mut counts: BTreeMap<Severity, (usize, usize)> = BTreeMap::new();
    for e in exps.cleaned.iter() {
        let Some(band) = e.severity_v2() else {
            continue;
        };
        let Some(est) = exps.report.disclosure.get(&e.id) else {
            continue;
        };
        let slot = counts.entry(band).or_insert((0, 0));
        slot.1 += 1;
        if est.estimated < e.published {
            slot.0 += 1;
        }
    }
    counts
        .into_iter()
        .map(|(k, (h, n))| (k, h as f64 / n as f64))
        .collect()
}

/// One Table 8 row.
#[derive(Debug, Clone, PartialEq)]
pub struct TopDateRow {
    /// The calendar date.
    pub date: Date,
    /// Its weekday.
    pub weekday: Weekday,
    /// CVEs on that date.
    pub count: usize,
    /// Share of that *year's* CVEs (the paper's `%` column).
    pub share_of_year: f64,
}

/// Table 8 left: top dates by NVD publication.
pub fn top_publication_dates(db: &Database, k: usize) -> Vec<TopDateRow> {
    top_dates(db.iter().map(|e| e.published), k)
}

/// Table 8 right: top dates by estimated disclosure.
pub fn top_disclosure_dates(
    db: &Database,
    estimates: &BTreeMap<CveId, DisclosureEstimate>,
    k: usize,
) -> Vec<TopDateRow> {
    top_dates(
        db.iter()
            .filter_map(|e| estimates.get(&e.id).map(|est| est.estimated)),
        k,
    )
}

fn top_dates(dates: impl Iterator<Item = Date>, k: usize) -> Vec<TopDateRow> {
    let mut by_date: BTreeMap<Date, usize> = BTreeMap::new();
    let mut by_year: BTreeMap<i32, usize> = BTreeMap::new();
    for d in dates {
        *by_date.entry(d).or_insert(0) += 1;
        *by_year.entry(d.year()).or_insert(0) += 1;
    }
    let mut rows: Vec<TopDateRow> = by_date
        .into_iter()
        .map(|(date, count)| TopDateRow {
            date,
            weekday: date.weekday(),
            count,
            share_of_year: count as f64 / by_year[&date.year()] as f64,
        })
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.date.cmp(&b.date)));
    rows.truncate(k);
    rows
}

/// Renders a Table 8 half.
pub fn render_top_dates(rows: &[TopDateRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.date.paper_short(),
                r.weekday.paper_abbrev().to_owned(),
                r.count.to_string(),
                render::pct(r.share_of_year),
            ]
        })
        .collect();
    render::table(&["date", "DoW", "vulns", "% of year"], &body)
}

/// Fig. 2: CVE counts per weekday, by estimated disclosure and by NVD
/// publication date.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DayOfWeek {
    /// Counts indexed by [`Weekday::index`] (Mon..Sun) — disclosure.
    pub disclosure: [usize; 7],
    /// Counts indexed by weekday — NVD publication.
    pub published: [usize; 7],
}

/// Computes Fig. 2.
pub fn day_of_week(exps: &Experiments) -> DayOfWeek {
    let mut disclosure = [0usize; 7];
    let mut published = [0usize; 7];
    for e in exps.cleaned.iter() {
        published[e.published.weekday().index()] += 1;
        if let Some(est) = exps.report.disclosure.get(&e.id) {
            disclosure[est.estimated.weekday().index()] += 1;
        }
    }
    DayOfWeek {
        disclosure,
        published,
    }
}

/// Renders Fig. 2 as a text series.
pub fn render_day_of_week(d: &DayOfWeek) -> String {
    let rows: Vec<Vec<String>> = Weekday::ALL
        .iter()
        .map(|w| {
            vec![
                w.paper_abbrev().to_owned(),
                d.disclosure[w.index()].to_string(),
                d.published[w.index()].to_string(),
            ]
        })
        .collect();
    render::table(&["day", "disclosure", "NVD date"], &rows)
}

/// Fig. 4: average lag (days) by rectified v3 severity.
pub fn average_lag_by_severity(exps: &Experiments) -> BTreeMap<Severity, f64> {
    let mut sums: BTreeMap<Severity, (f64, usize)> = BTreeMap::new();
    for e in exps.cleaned.iter() {
        let Some(band) = exps.report.effective_v3_severity(&exps.cleaned, &e.id) else {
            continue;
        };
        let Some(est) = exps.report.disclosure.get(&e.id) else {
            continue;
        };
        let lag = est.lag_days(e.published).max(0) as f64;
        let slot = sums.entry(band).or_insert((0.0, 0));
        slot.0 += lag;
        slot.1 += 1;
    }
    sums.into_iter()
        .filter(|(band, _)| *band != Severity::None)
        .map(|(k, (s, n))| (k, s / n as f64))
        .collect()
}

/// Renders Fig. 4.
pub fn render_average_lag(lags: &BTreeMap<Severity, f64>) -> String {
    let rows: Vec<Vec<String>> = lags
        .iter()
        .map(|(band, avg)| vec![format!("{band:?}"), render::f2(*avg)])
        .collect();
    render::table(&["severity (v3)", "avg lag (days)"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Experiments;

    fn exps() -> std::sync::Arc<Experiments> {
        // Shared fixture cache: one generation+clean per (scale, seed)
        // per process instead of one per test.
        Experiments::shared(0.02, 77)
    }

    #[test]
    fn fig1_shape_matches_paper() {
        let e = exps();
        let cdf = lag_cdf(&e);
        assert!(
            (0.28..0.50).contains(&cdf.zero_fraction),
            "zero {}",
            cdf.zero_fraction
        );
        assert!(
            (0.55..0.82).contains(&cdf.within_week_fraction),
            "≤7d {}",
            cdf.within_week_fraction
        );
        // CDF is monotone and ends near 1.
        for w in cdf.points.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!(cdf.points.last().unwrap().1 > 0.99);
    }

    #[test]
    fn improvement_ordering_matches_section_4_1() {
        let e = exps();
        let improved = improved_fraction_by_v2(&e);
        // Paper: high-severity publication dates improve most (65% vs 37%).
        assert!(
            improved[&Severity::High] > improved[&Severity::Low],
            "H {} vs L {}",
            improved[&Severity::High],
            improved[&Severity::Low]
        );
    }

    #[test]
    fn nye_artifact_in_publication_dates_only() {
        let e = exps();
        let pub_top = top_publication_dates(&e.cleaned, 10);
        let nye_pub = pub_top.iter().filter(|r| r.date.is_new_years_eve()).count();
        assert!(nye_pub >= 1, "NYE must appear in top publication dates");
        let dis_top = top_disclosure_dates(&e.cleaned, &e.report.disclosure, 10);
        let nye_dis = dis_top.iter().filter(|r| r.date.is_new_years_eve()).count();
        assert_eq!(nye_dis, 0, "NYE must not appear in top disclosure dates");
    }

    #[test]
    fn disclosures_skew_early_week() {
        let e = exps();
        let d = day_of_week(&e);
        let mon_tue = d.disclosure[0] + d.disclosure[1];
        let fri_sat_sun = d.disclosure[4] + d.disclosure[5] + d.disclosure[6];
        assert!(mon_tue > fri_sat_sun, "{:?}", d.disclosure);
    }

    #[test]
    fn average_lag_within_paper_band() {
        let e = exps();
        let lags = average_lag_by_severity(&e);
        // Paper Fig. 4: 47.6–66.8 days across bands, i.e. no strong
        // severity dependence. Population bands are wide at reduced scale
        // (Low holds ≈1.6% of CVEs), so assert the well-populated bands
        // plus overall flatness.
        for band in [Severity::Medium, Severity::High, Severity::Critical] {
            let avg = lags[&band];
            assert!((15.0..180.0).contains(&avg), "{band:?}: {avg}");
        }
        let max = lags.values().cloned().fold(f64::MIN, f64::max);
        let min = lags.values().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 6.0, "lag varies too much by severity: {lags:?}");
    }

    #[test]
    fn renderers_do_not_panic() {
        let e = exps();
        let _ = render_lag_cdf(&lag_cdf(&e));
        let _ = render_top_dates(&top_publication_dates(&e.cleaned, 10));
        let _ = render_day_of_week(&day_of_week(&e));
        let _ = render_average_lag(&average_lag_by_severity(&e));
    }
}
