//! Plain-text table rendering for the reproduction harness.

/// Renders an aligned text table with a header row.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            for _ in cell.chars().count()..*w {
                line.push(' ');
            }
        }
        line.trim_end().to_owned()
    };
    out.push_str(&render_row(headers.to_vec(), &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(
            row.iter().map(String::as_str).collect(),
            &widths,
        ));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "count"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "23".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.385), "38.50%");
        assert_eq!(f2(1.234), "1.23");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        table(&["a"], &[vec!["x".into(), "y".into()]]);
    }
}
