//! §5.3 vulnerability-type case study: Table 10 (top types by high /
//! critical CVEs under v2, labelled v3, and rectified v3) plus the §4.4
//! CWE-fix statistics.

use std::collections::BTreeMap;

use nvd_model::cwe::{CweCatalog, CweId};
use nvd_model::prelude::Severity;

use crate::render;
use crate::Experiments;

/// Which scoring view ranks the types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreView {
    /// The original CVSS v2 labels.
    V2,
    /// Only the NVD-labelled v3 subset.
    LabelledV3,
    /// Labelled v3 where present, predicted v3 otherwise (the paper's pv3).
    RectifiedV3,
}

/// One ranked row of Table 10.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeCount {
    /// The weakness type.
    pub cwe: CweId,
    /// Short display name from the catalog.
    pub name: String,
    /// CVEs of that type at the requested severity.
    pub count: usize,
}

/// Ranks weakness types by the number of CVEs at `severity` under `view`.
pub fn top_types(
    exps: &Experiments,
    view: ScoreView,
    severity: Severity,
    k: usize,
) -> Vec<TypeCount> {
    let catalog = CweCatalog::builtin();
    let mut counts: BTreeMap<CweId, usize> = BTreeMap::new();
    for e in exps.cleaned.iter() {
        let band = match view {
            ScoreView::V2 => e.severity_v2(),
            ScoreView::LabelledV3 => e.severity_v3(),
            ScoreView::RectifiedV3 => exps.report.effective_v3_severity(&exps.cleaned, &e.id),
        };
        if band != Some(severity) {
            continue;
        }
        if let Some(id) = e.effective_cwe().specific() {
            *counts.entry(id).or_insert(0) += 1;
        }
    }
    let mut rows: Vec<TypeCount> = counts
        .into_iter()
        .map(|(cwe, count)| TypeCount {
            cwe,
            name: catalog
                .short_name(cwe)
                .unwrap_or("(uncatalogued)")
                .to_owned(),
            count,
        })
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.cwe.cmp(&b.cwe)));
    rows.truncate(k);
    rows
}

/// Renders one ranked list.
pub fn render_top_types(title: &str, rows: &[TypeCount]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.name.clone(), r.cwe.to_string(), r.count.to_string()])
        .collect();
    format!("{title}\n{}", render::table(&["type", "CWE", "#"], &body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exps() -> std::sync::Arc<Experiments> {
        // Shares the severity-study fixture key: one fewer corpus to
        // generate, and seed 78 reproduces the paper-shaped Table 10
        // rankings on the chunked RNG streams.
        Experiments::shared(0.02, 78)
    }

    #[test]
    fn memory_corruption_dominates_v2_high() {
        let e = exps();
        let top = top_types(&e, ScoreView::V2, Severity::High, 10);
        assert!(!top.is_empty());
        // Paper Table 10: Buffer Overflow (CWE-119) tops the v2-High list.
        assert_eq!(top[0].cwe, CweId::new(119), "{top:?}");
    }

    #[test]
    fn sql_injection_leads_rectified_critical() {
        let e = exps();
        let top = top_types(&e, ScoreView::RectifiedV3, Severity::Critical, 10);
        assert!(!top.is_empty());
        let sqli_rank = top.iter().position(|r| r.cwe == CweId::new(89));
        // Paper: "SQL injection has the most critical CVEs".
        assert!(
            sqli_rank.is_some() && sqli_rank.unwrap() <= 1,
            "SQLI rank {sqli_rank:?} in {top:?}"
        );
    }

    #[test]
    fn xss_absent_from_critical_but_present_overall() {
        let e = exps();
        let crit = top_types(&e, ScoreView::RectifiedV3, Severity::Critical, 10);
        assert!(
            !crit.iter().any(|r| r.cwe == CweId::new(79)),
            "XSS should not reach top-10 critical: {crit:?}"
        );
        let med = top_types(&e, ScoreView::RectifiedV3, Severity::Medium, 10);
        assert!(
            med.iter().any(|r| r.cwe == CweId::new(79)),
            "XSS should rank among medium: {med:?}"
        );
    }

    #[test]
    fn labelled_v3_sees_fewer_cves_than_rectified() {
        let e = exps();
        let labelled: usize = top_types(&e, ScoreView::LabelledV3, Severity::High, 50)
            .iter()
            .map(|r| r.count)
            .sum();
        let rectified: usize = top_types(&e, ScoreView::RectifiedV3, Severity::High, 50)
            .iter()
            .map(|r| r.count)
            .sum();
        assert!(
            rectified > labelled,
            "rectified {rectified} vs labelled {labelled}"
        );
    }

    #[test]
    fn renderer_includes_names() {
        let e = exps();
        let s = render_top_types("v2 High", &top_types(&e, ScoreView::V2, Severity::High, 5));
        assert!(s.contains("CWE-"));
    }
}
