//! Regenerates every table and figure of *Cleaning the NVD* (Anwar et al.,
//! DSN 2021) over a calibrated synthetic corpus.
//!
//! ```text
//! cargo run --release -p nvd-analysis --bin paper-repro -- \
//!     [--scale 0.1] [--seed 42] [--profile fast|paper] [--experiments-md PATH] \
//!     [--quality-md PATH]
//! ```
//!
//! The case studies are independent given the cleaned database, so their
//! bodies render in parallel on the `minipar` pool (`NVD_JOBS` controls the
//! width) and print in paper order — stdout is byte-identical at any job
//! count, which the CI perf-smoke job verifies by diffing `NVD_JOBS=1`
//! against `NVD_JOBS=4` runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use nvd_analysis::{
    disclosure_study, model_study, pca_study, quality_study, severity_study, types_study,
    vendor_study, Experiments,
};
use nvd_clean::severity::TrainProfile;
use nvd_model::prelude::Severity;

struct Args {
    scale: f64,
    seed: u64,
    profile: TrainProfile,
    experiments_md: Option<String>,
    quality_md: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.05,
        seed: 42,
        profile: TrainProfile::Fast,
        experiments_md: None,
        quality_md: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scale" => args.scale = value().parse().expect("numeric --scale"),
            "--seed" => args.seed = value().parse().expect("numeric --seed"),
            "--profile" => {
                args.profile = match value().as_str() {
                    "paper" => TrainProfile::Paper,
                    "fast" => TrainProfile::Fast,
                    other => panic!("unknown profile {other:?}"),
                }
            }
            "--experiments-md" => args.experiments_md = Some(value()),
            "--quality-md" => args.quality_md = Some(value()),
            "--help" | "-h" => {
                println!(
                    "usage: paper-repro [--scale F] [--seed N] [--profile fast|paper] \
                     [--experiments-md PATH] [--quality-md PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

fn section(title: &str, body: &str, out: &mut String) {
    println!("\n=== {title} ===\n{body}");
    let _ = writeln!(out, "\n### {title}\n\n```text\n{body}```\n");
}

/// A paper artefact: title plus a body renderer. Renderers returning `None`
/// are skipped (e.g. PCA on a too-small database).
type Section<'a> = (String, Box<dyn Fn() -> Option<String> + Sync + 'a>);

fn sections<'a>(exps: &'a Experiments) -> Vec<Section<'a>> {
    let outcome = exps.report.severity.as_ref().expect("backport ran");
    let mut out: Vec<Section<'a>> = Vec::new();

    // --- corpus overview (paper §3) -------------------------------------
    out.push((
        "Dataset overview (§3)".into(),
        Box::new(move || {
            let stats = exps.corpus.database.stats();
            Some(format!(
                "CVEs: {}\nvendors: {}\nproducts: {}\nwith CVSS v3: {}\nreference URLs: {}\n",
                stats.cve_count,
                stats.distinct_vendors,
                stats.distinct_products,
                exps.corpus.database.iter().filter(|e| e.has_v3()).count(),
                exps.corpus
                    .database
                    .iter()
                    .map(|e| e.references.len())
                    .sum::<usize>(),
            ))
        }),
    ));

    // --- Fig. 1 -----------------------------------------------------------
    out.push((
        "Figure 1 — CDF of vulnerability lag times (paper: ≈38% zero, ≈70% ≤7d, ≈28% >7d)".into(),
        Box::new(move || {
            Some(disclosure_study::render_lag_cdf(
                &disclosure_study::lag_cdf(exps),
            ))
        }),
    ));
    out.push((
        "§4.1 — dates improved per v2 band (paper: L 37%, M 41%, H 65%)".into(),
        Box::new(move || {
            let improved = disclosure_study::improved_fraction_by_v2(exps);
            let improved_str = improved
                .iter()
                .map(|(k, v)| format!("{k:?}: {:.1}%", 100.0 * v))
                .collect::<Vec<_>>()
                .join("  ");
            Some(format!("{improved_str}\n"))
        }),
    ));

    // --- Table 2 -----------------------------------------------------------
    out.push((
        "Table 2 — vendor-pair patterns, confirmed/possible (paper: Tokens 260/260; strong signals >90% at LCS≥3)".into(),
        Box::new(move || {
            let pb = &exps.report.names.pattern_breakdown;
            Some(format!(
                "Tokens: {}/{} confirmed\nLCS≥3  #MP=0: {}/{}  #MP=1: {}/{}  #MP>1: {}/{}  Pref: {}/{}  PaV: {}/{}\nLCS<3  #MP=0: {}/{}  #MP=1: {}/{}  #MP>1: {}/{}  Pref: {}/{}  PaV: {}/{}\n",
                pb.tokens.1, pb.tokens.0,
                pb.mp_lcs3[0].1, pb.mp_lcs3[0].0,
                pb.mp_lcs3[1].1, pb.mp_lcs3[1].0,
                pb.mp_lcs3[2].1, pb.mp_lcs3[2].0,
                pb.pref_lcs3.1, pb.pref_lcs3.0,
                pb.pav_lcs3.1, pb.pav_lcs3.0,
                pb.mp_lcs_short[0].1, pb.mp_lcs_short[0].0,
                pb.mp_lcs_short[1].1, pb.mp_lcs_short[1].0,
                pb.mp_lcs_short[2].1, pb.mp_lcs_short[2].0,
                pb.pref_lcs_short.1, pb.pref_lcs_short.0,
                pb.pav_lcs_short.1, pb.pav_lcs_short.0,
            ))
        }),
    ));

    // --- Table 3 -----------------------------------------------------------
    out.push((
        "Table 3 — name inconsistencies across databases (paper: NVD 1,835/18,991; SF 2,094/24,760; ST 110/4,151)".into(),
        Box::new(move || {
            Some(vendor_study::render_name_scale(&vendor_study::name_scale(
                exps,
            )))
        }),
    ));

    // --- severity model tables ------------------------------------------------
    out.push((
        "Table 4 — ground-truth v2→v3 transitions (paper: L→M 84%, M→{M,H} 96%, H→{H,C} 95%)"
            .into(),
        Box::new(move || {
            Some(model_study::render_transition(
                "",
                &outcome.ground_truth_transition,
            ))
        }),
    ));
    out.push((
        "Table 5 — model errors (paper: LR 12.16/0.73, SVR 12.63/0.82, CNN 9.62/0.54, DNN 11.61/0.65)".into(),
        Box::new(move || Some(model_study::render_model_errors(outcome))),
    ));
    out.push((
        format!(
            "Table 6 — predicted v3 for v2-only CVEs (chosen model: {}; paper: ≈40% change severity)",
            outcome.chosen.label()
        ),
        Box::new(move || {
            Some(model_study::render_transition(
                "",
                &outcome.backport_transition,
            ))
        }),
    ));
    out.push((
        "Table 7 — accuracy overall and by input class (paper: CNN 86.29% overall, best on High 93.55%)".into(),
        Box::new(move || Some(model_study::render_model_accuracy(outcome))),
    ));

    // --- Table 8 -----------------------------------------------------------
    out.push((
        "Table 8 (left) — top dates by CVE publication (paper: NYE batches dominate)".into(),
        Box::new(move || {
            Some(disclosure_study::render_top_dates(
                &disclosure_study::top_publication_dates(&exps.cleaned, 10),
            ))
        }),
    ));
    out.push((
        "Table 8 (right) — top dates by estimated disclosure (paper: Mon/Tue vendor event days)"
            .into(),
        Box::new(move || {
            Some(disclosure_study::render_top_dates(
                &disclosure_study::top_disclosure_dates(&exps.cleaned, &exps.report.disclosure, 10),
            ))
        }),
    ));

    // --- Fig. 2 -----------------------------------------------------------
    out.push((
        "Figure 2 — CVEs per day of week (paper: disclosure skews Mon–Wed; NVD dates flatter)"
            .into(),
        Box::new(move || {
            Some(disclosure_study::render_day_of_week(
                &disclosure_study::day_of_week(exps),
            ))
        }),
    ));

    // --- Table 9 -----------------------------------------------------------
    out.push((
        "Table 9 — severity distribution over all CVEs (paper: v2 8.25/54.83/36.92; pv3 1.62/38.30/44.48/15.60)".into(),
        Box::new(move || {
            Some(severity_study::render_distribution(
                &severity_study::severity_distribution(exps),
            ))
        }),
    ));

    // --- Fig. 3 -----------------------------------------------------------
    out.push((
        "Figure 3 — yearly severity proportions under v2 / labelled v3 / pv3 (paper: sparse retroactive v3; declining critical share)".into(),
        Box::new(move || {
            Some(severity_study::render_yearly(
                &severity_study::yearly_severity(exps),
            ))
        }),
    ));

    // --- Table 10 -----------------------------------------------------------
    out.push((
        "Table 10 — top types by high/critical CVEs (paper: SQLI leads pv3-critical, BO leads highs)".into(),
        Box::new(move || {
            let mut t10 = String::new();
            for (view, band, label) in [
                (types_study::ScoreView::V2, Severity::High, "v2 High"),
                (
                    types_study::ScoreView::LabelledV3,
                    Severity::Critical,
                    "v3 Critical",
                ),
                (
                    types_study::ScoreView::LabelledV3,
                    Severity::High,
                    "v3 High",
                ),
                (
                    types_study::ScoreView::RectifiedV3,
                    Severity::Critical,
                    "pv3 Critical",
                ),
                (
                    types_study::ScoreView::RectifiedV3,
                    Severity::High,
                    "pv3 High",
                ),
            ] {
                t10.push_str(&types_study::render_top_types(
                    label,
                    &types_study::top_types(exps, view, band, 10),
                ));
                t10.push('\n');
            }
            Some(t10)
        }),
    ));

    // --- Table 11 -----------------------------------------------------------
    out.push((
        "Table 11 — top vendors by CVEs and products, after vs before correction".into(),
        Box::new(move || {
            Some(format!(
                "{}\n{}",
                vendor_study::render_vendor_ranks(
                    "By number of CVEs",
                    &vendor_study::top_vendors_by_cves(&exps.cleaned, 10),
                    &vendor_study::top_vendors_by_cves(&exps.corpus.database, 10),
                ),
                vendor_study::render_vendor_ranks(
                    "By number of products",
                    &vendor_study::top_vendors_by_products(&exps.cleaned, 10),
                    &vendor_study::top_vendors_by_products(&exps.corpus.database, 10),
                ),
            ))
        }),
    ));

    // --- Table 12 -----------------------------------------------------------
    out.push((
        "Table 12 — mislabeled-name CVEs by severity (paper: over a third High under v2; ≈1K critical)".into(),
        Box::new(move || {
            Some(vendor_study::render_mislabeled(
                &vendor_study::mislabeled_breakdown(exps),
            ))
        }),
    ));

    // --- Fig. 4 -----------------------------------------------------------
    out.push((
        "Figure 4 — average lag by v3 severity (paper: flat 47.6–66.8 days)".into(),
        Box::new(move || {
            Some(disclosure_study::render_average_lag(
                &disclosure_study::average_lag_by_severity(exps),
            ))
        }),
    ));

    // --- Fig. 5 -----------------------------------------------------------
    out.push((
        "Figure 5 — PCA of severity features (paper: Low scattered; Medium/High patterned)".into(),
        Box::new(move || {
            pca_study::pca_study(&exps.cleaned).map(|study| pca_study::render_pca(&study))
        }),
    ));

    // --- Tables 13–15 -----------------------------------------------------
    out.push((
        "Table 13 — predictions over the full ground truth".into(),
        Box::new(move || {
            Some(model_study::render_transition(
                "",
                &outcome.full_prediction_transition,
            ))
        }),
    ));
    out.push((
        "Table 14 — test split, ground truth".into(),
        Box::new(move || {
            Some(model_study::render_transition(
                "",
                &outcome.test_ground_truth_transition,
            ))
        }),
    ));
    out.push((
        "Table 15 — test split, predictions".into(),
        Box::new(move || {
            Some(model_study::render_transition(
                "",
                &outcome.test_prediction_transition,
            ))
        }),
    ));

    // --- §4.4 CWE stats ------------------------------------------------------
    out.push((
        "§4.4 — CWE rectification (paper: 26,312 Other / 7,566 noinfo / 1,293 unassigned ≈31%; 2,456 corrected)".into(),
        Box::new(move || {
            let cwe = &exps.report.cwe.stats;
            Some(format!(
                "Other: {}\nnoinfo: {}\nunassigned: {}\ndegenerate fraction: {}\ncorrected: {} (Other {}, missing {}, augmented {})\n",
                cwe.other_count,
                cwe.noinfo_count,
                cwe.unassigned_count,
                nvd_analysis::render::pct(cwe.degenerate_fraction(exps.cleaned.len())),
                cwe.total_corrected(),
                cwe.fixed_other,
                cwe.fixed_missing,
                cwe.augmented_typed,
            ))
        }),
    ));

    // --- Table 16 -----------------------------------------------------------
    out.push((
        "Table 16 — sampled CVEs with mislabeled vendors (paper: severe, exploitable)".into(),
        Box::new(move || {
            Some(vendor_study::render_case_samples(
                &vendor_study::case_samples(exps, 10),
            ))
        }),
    ));

    // --- quality ledger -------------------------------------------------
    out.push((
        "Quality ledger — typed per-CVE issue assessment (detector first, fixer second)".into(),
        Box::new(move || Some(quality_study::render_quality_summary(exps))),
    ));

    // --- §4.4 k-NN type classifier -------------------------------------------
    out.push((
        "§4.4 — description k-NN type classifier (paper: 65.60% over 151 classes)".into(),
        Box::new(move || {
            nvd_clean::train_type_classifier(
                &exps.cleaned,
                &nvd_clean::TypeClassifierOptions::default(),
            )
            .map(|(_, report)| {
                format!(
                    "accuracy: {}\nclasses: {}\ntrain/test: {}/{}\n",
                    nvd_analysis::render::pct(report.accuracy),
                    report.classes,
                    report.train_size,
                    report.test_size,
                )
            })
        }),
    ));

    out
}

fn main() {
    let args = parse_args();
    eprintln!(
        "generating corpus (scale {}, seed {}) and running the cleaning pipeline…",
        args.scale, args.seed
    );
    let exps = Experiments::run(args.scale, args.seed, args.profile);

    // Render every section body in parallel (the §5 case studies are
    // independent given the cleaned database), then print in paper order.
    let sections = sections(&exps);
    let bodies: Vec<Option<String>> = minipar::par_map(&sections, |(_, render)| render());

    let mut md = String::new();
    let _ = writeln!(
        md,
        "# EXPERIMENTS — paper vs. measured\n\n\
         Generated by `paper-repro --scale {} --seed {} --profile {:?}` over a\n\
         synthetic corpus of {} CVEs ({} reference pages). Absolute numbers scale\n\
         with `--scale`; the *shapes* below are the reproduction targets.\n",
        args.scale,
        args.seed,
        args.profile,
        exps.corpus.database.len(),
        exps.corpus.archive.len(),
    );
    for ((title, _), body) in sections.iter().zip(bodies) {
        if let Some(body) = body {
            section(title, &body, &mut md);
        }
    }

    // --- summary of lag by band for the paper-vs-measured record --------------
    let lag_by_band: BTreeMap<Severity, f64> = disclosure_study::average_lag_by_severity(&exps);
    let _ = lag_by_band;

    if let Some(path) = args.experiments_md {
        std::fs::write(&path, md).expect("write experiments file");
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.quality_md {
        let report = quality_study::render_quality_md(&exps, args.scale, args.seed);
        std::fs::write(&path, report).expect("write quality report");
        eprintln!("wrote {path}");
    }
}
