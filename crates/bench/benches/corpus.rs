//! Corpus generation and archive throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvd_bench::bench_corpus;
use nvd_synth::{generate, SynthConfig};
use webarchive::CrawlerSet;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_generation");
    for scale in [0.005, 0.01, 0.02] {
        group.bench_function(format!("scale_{scale}"), |b| {
            b.iter(|| generate(black_box(&SynthConfig::with_scale(scale, 7))))
        });
    }
    group.finish();
}

fn bench_crawl(c: &mut Criterion) {
    let corpus = bench_corpus();
    let crawlers = CrawlerSet::builtin();
    let urls: Vec<&str> = corpus.archive.urls().take(2000).collect();
    c.bench_function("archive_fetch_and_extract_2000_pages", |b| {
        b.iter(|| {
            let mut extracted = 0usize;
            for url in &urls {
                if let Ok(page) = corpus.archive.fetch(black_box(url)) {
                    if crawlers.extract(page).is_some() {
                        extracted += 1;
                    }
                }
            }
            extracted
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation, bench_crawl
);
criterion_main!(benches);
