//! §4.1 / §5.1 benches: Fig. 1 (lag CDF, with the aggregation-rule and
//! crawler-coverage ablations), Table 8, Fig. 2 and Fig. 4.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvd_analysis::disclosure_study;
use nvd_bench::{bench_corpus, bench_experiments};
use nvd_clean::disclosure::{AggregationRule, DisclosureEstimator};
use nvd_clean::LagSummary;
use webarchive::CrawlerSet;

fn fig1_lag_cdf(c: &mut Criterion) {
    let corpus = bench_corpus();
    c.bench_function("fig1_lag_cdf", |b| {
        b.iter(|| {
            let estimator = DisclosureEstimator::new(&corpus.archive);
            let estimates = estimator.estimate_all(black_box(&corpus.database));
            LagSummary::compute(&corpus.database, &estimates).zero_fraction
        })
    });

    // Ablation 1 (DESIGN.md): aggregation rule.
    let mut group = c.benchmark_group("fig1_aggregation_ablation");
    for (name, rule) in [
        ("minimum", AggregationRule::Minimum),
        ("median", AggregationRule::Median),
        ("mean", AggregationRule::Mean),
    ] {
        group.bench_function(name, |b| {
            let estimator = DisclosureEstimator::new(&corpus.archive).with_rule(rule);
            b.iter(|| estimator.estimate_all(black_box(&corpus.database)))
        });
    }
    group.finish();

    // Ablation 2: crawler coverage (the paper's "top 50 of 5,997 domains").
    let mut group = c.benchmark_group("fig1_coverage_ablation");
    for n in [5, 15, 50] {
        group.bench_function(format!("top_{n}_domains"), |b| {
            let estimator =
                DisclosureEstimator::new(&corpus.archive).with_crawlers(CrawlerSet::top_n(n));
            b.iter(|| estimator.estimate_all(black_box(&corpus.database)))
        });
    }
    group.finish();
}

fn table8_and_figures(c: &mut Criterion) {
    let exps = bench_experiments();
    c.bench_function("table8_top_dates", |b| {
        b.iter(|| {
            (
                disclosure_study::top_publication_dates(black_box(&exps.cleaned), 10),
                disclosure_study::top_disclosure_dates(&exps.cleaned, &exps.report.disclosure, 10),
            )
        })
    });
    c.bench_function("fig2_day_of_week", |b| {
        b.iter(|| disclosure_study::day_of_week(black_box(&exps)))
    });
    c.bench_function("fig4_lag_by_severity", |b| {
        b.iter(|| disclosure_study::average_lag_by_severity(black_box(&exps)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig1_lag_cdf, table8_and_figures
);
criterion_main!(benches);
