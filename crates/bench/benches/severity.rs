//! §4.3 / §5.2 benches: Table 4 (ground-truth transitions), Table 5/7
//! (model training per architecture), Table 6 (backport), Table 9 and
//! Fig. 3 (distributions), Tables 13–15 (sanity matrices).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvd_analysis::severity_study;
use nvd_bench::{bench_corpus, bench_experiments};
use nvd_clean::severity::{backport_v3, BackportOptions, ModelKind};

fn table5_model_training(c: &mut Criterion) {
    let corpus = bench_corpus();
    let mut group = c.benchmark_group("table5_train_model");
    group.sample_size(10);
    for kind in ModelKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                backport_v3(
                    black_box(&corpus.database),
                    &BackportOptions {
                        kinds: match kind {
                            ModelKind::Lr => &[ModelKind::Lr],
                            ModelKind::Svr => &[ModelKind::Svr],
                            ModelKind::Cnn => &[ModelKind::Cnn],
                            ModelKind::Dnn => &[ModelKind::Dnn],
                        },
                        force_model: Some(kind),
                        ..BackportOptions::default()
                    },
                )
            })
        });
    }
    group.finish();
}

fn table6_backport_pipeline(c: &mut Criterion) {
    let corpus = bench_corpus();
    // Tables 4, 6, 13–15 all come out of one backport run.
    c.bench_function("table4_6_13_15_full_backport", |b| {
        b.iter(|| backport_v3(black_box(&corpus.database), &BackportOptions::default()))
    });
}

fn table9_fig3_distributions(c: &mut Criterion) {
    let exps = bench_experiments();
    c.bench_function("table9_distribution", |b| {
        b.iter(|| severity_study::severity_distribution(black_box(&exps)))
    });
    c.bench_function("fig3_yearly_severity", |b| {
        b.iter(|| severity_study::yearly_severity(black_box(&exps)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = table5_model_training, table6_backport_pipeline, table9_fig3_distributions
);
criterion_main!(benches);
