//! Batched vs legacy-shape training-kernel comparison.
//!
//! Run with `BENCH_JSON=BENCH_mlkit.json cargo bench -p nvd-bench --bench
//! mlkit` to emit the machine-readable artifact CI uploads. Two questions
//! are answered per run:
//!
//! 1. **Does batching win on its own?** `fit/batched/jobs_1` vs
//!    `fit/legacy_per_sample` compares the matrix-form minibatch trainer
//!    against a faithful replica of the pre-refactor per-sample
//!    forward/backward loop, both pinned to one job — the kernel win must
//!    not depend on thread count.
//! 2. **Does the matrix layer scale?** `fit/batched/jobs_4` and the raw
//!    `matmul` group compare 1 vs 4 jobs through `minipar::with_jobs`
//!    (outputs are asserted bit-identical before timing starts).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlkit::matrix::Matrix;
use mlkit::nn::{Activation, Network, NetworkBuilder, TrainConfig};

/// Severity-sized synthetic regression task: FEATURE_DIM-wide rows, the
/// ground-truth scale of a 2% corpus, nonlinear target.
const FEATURES: usize = 13;
const SAMPLES: usize = 1024;

fn severity_sized_data() -> (Matrix, Vec<f64>) {
    let mut data = Vec::with_capacity(SAMPLES * FEATURES);
    let mut y = Vec::with_capacity(SAMPLES);
    for i in 0..SAMPLES {
        let mut row = [0.0; FEATURES];
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = (((i * 31 + j * 17) % 97) as f64) / 97.0;
        }
        y.push(((3.0 + 4.0 * row[0] + 3.0 * row[3] * row[4] + 2.0 * row[12]) / 10.0).min(1.0));
        data.extend_from_slice(&row);
    }
    (Matrix::from_vec(SAMPLES, FEATURES, data), y)
}

/// The paper's fast-profile DNN shape (what every severity clean trains).
fn dnn() -> Network {
    NetworkBuilder::input_1d(FEATURES)
        .dense(16, Activation::Relu)
        .dense(16, Activation::Relu)
        .dense(32, Activation::Relu)
        .dense(32, Activation::Relu)
        .dense(1, Activation::Sigmoid)
        .build(7)
}

fn train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 5,
        batch_size: 32,
        seed: 7,
        ..TrainConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Legacy-shape reference: the pre-refactor per-sample trainer.
// ---------------------------------------------------------------------------

/// A faithful replica of the per-sample dense trainer this PR deleted:
/// `Vec<Vec<f64>>` activation/gradient scratch, one forward/backward per
/// sample, identical Adam updates and shuffle stream. Lives only in this
/// bench as the baseline the batched kernels must beat.
mod legacy {
    use super::TrainConfig;
    use mlkit::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    pub struct LegacyDense {
        sizes: Vec<usize>,
        /// Per layer: `units × fan_in` row-major weights.
        weights: Vec<Vec<f64>>,
        biases: Vec<Vec<f64>>,
        /// Sigmoid on the last layer, ReLU elsewhere.
        n_layers: usize,
    }

    impl LegacyDense {
        pub fn new(input: usize, widths: &[usize], seed: u64) -> Self {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sizes = vec![input];
            sizes.extend_from_slice(widths);
            let n_layers = widths.len();
            let mut weights = Vec::new();
            let mut biases = Vec::new();
            for li in 0..n_layers {
                let (fan_in, fan_out) = (sizes[li], sizes[li + 1]);
                let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
                weights.push(
                    (0..fan_in * fan_out)
                        .map(|_| rng.gen_range(-limit..limit))
                        .collect(),
                );
                biases.push(vec![0.0; fan_out]);
            }
            Self {
                sizes,
                weights,
                biases,
                n_layers,
            }
        }

        fn activate(&self, li: usize, x: f64) -> f64 {
            if li + 1 == self.n_layers {
                1.0 / (1.0 + (-x).exp())
            } else {
                x.max(0.0)
            }
        }

        fn derivative(&self, li: usize, out: f64) -> f64 {
            if li + 1 == self.n_layers {
                out * (1.0 - out)
            } else if out > 0.0 {
                1.0
            } else {
                0.0
            }
        }

        /// Per-sample minibatch SGD/Adam exactly as the old `Network::fit`
        /// ran it: per-sample forward with `Vec<Vec<f64>>` caches, scalar
        /// accumulation into per-layer gradient vectors.
        pub fn fit(&mut self, x: &Matrix, y: &[f64], cfg: &TrainConfig) -> f64 {
            let n = x.rows();
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let mut adam_m: Vec<Vec<f64>> =
                self.weights.iter().map(|w| vec![0.0; w.len()]).collect();
            let mut adam_v: Vec<Vec<f64>> =
                self.weights.iter().map(|w| vec![0.0; w.len()]).collect();
            let mut adam_bm: Vec<Vec<f64>> =
                self.biases.iter().map(|b| vec![0.0; b.len()]).collect();
            let mut adam_bv: Vec<Vec<f64>> =
                self.biases.iter().map(|b| vec![0.0; b.len()]).collect();
            let mut grad_w: Vec<Vec<f64>> =
                self.weights.iter().map(|w| vec![0.0; w.len()]).collect();
            let mut grad_b: Vec<Vec<f64>> =
                self.biases.iter().map(|b| vec![0.0; b.len()]).collect();
            let mut acts: Vec<Vec<f64>> = vec![Vec::new(); self.n_layers + 1];
            let mut order: Vec<usize> = (0..n).collect();
            let mut step = 0.0f64;
            let mut last_loss = 0.0;

            for _ in 0..cfg.epochs {
                for i in (1..order.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    order.swap(i, j);
                }
                let mut epoch_loss = 0.0;
                for batch in order.chunks(cfg.batch_size.max(1)) {
                    for g in &mut grad_w {
                        g.iter_mut().for_each(|v| *v = 0.0);
                    }
                    for g in &mut grad_b {
                        g.iter_mut().for_each(|v| *v = 0.0);
                    }
                    let scale = 1.0 / batch.len() as f64;
                    for &s in batch {
                        acts[0].clear();
                        acts[0].extend_from_slice(x.row(s));
                        for li in 0..self.n_layers {
                            let fan_in = self.sizes[li];
                            let units = self.sizes[li + 1];
                            let (head, tail) = acts.split_at_mut(li + 1);
                            let input = &head[li];
                            let out = &mut tail[0];
                            out.clear();
                            for u in 0..units {
                                let w = &self.weights[li][u * fan_in..(u + 1) * fan_in];
                                let mut acc = self.biases[li][u];
                                for (wi, xi) in w.iter().zip(input) {
                                    acc += wi * xi;
                                }
                                out.push(self.activate(li, acc));
                            }
                        }
                        let e = acts[self.n_layers][0] - y[s];
                        epoch_loss += e * e * scale;
                        let mut grad_cur = vec![2.0 * e * scale];
                        for li in (0..self.n_layers).rev() {
                            let fan_in = self.sizes[li];
                            let units = self.sizes[li + 1];
                            let mut grad_next = vec![0.0; fan_in];
                            for u in 0..units {
                                let d = grad_cur[u] * self.derivative(li, acts[li + 1][u]);
                                if d == 0.0 {
                                    continue;
                                }
                                grad_b[li][u] += d;
                                let w = &self.weights[li][u * fan_in..(u + 1) * fan_in];
                                let gw = &mut grad_w[li][u * fan_in..(u + 1) * fan_in];
                                for i in 0..fan_in {
                                    gw[i] += d * acts[li][i];
                                    grad_next[i] += d * w[i];
                                }
                            }
                            grad_cur = grad_next;
                        }
                    }
                    step += 1.0;
                    for li in 0..self.n_layers {
                        adam(
                            &mut self.weights[li],
                            &grad_w[li],
                            &mut adam_m[li],
                            &mut adam_v[li],
                            cfg,
                            step,
                        );
                        adam(
                            &mut self.biases[li],
                            &grad_b[li],
                            &mut adam_bm[li],
                            &mut adam_bv[li],
                            cfg,
                            step,
                        );
                    }
                }
                last_loss = epoch_loss;
            }
            last_loss
        }
    }

    fn adam(
        params: &mut [f64],
        grads: &[f64],
        m: &mut [f64],
        v: &mut [f64],
        cfg: &TrainConfig,
        t: f64,
    ) {
        let bc1 = 1.0 - cfg.beta1.powf(t);
        let bc2 = 1.0 - cfg.beta2.powf(t);
        for i in 0..params.len() {
            let g = grads[i];
            m[i] = cfg.beta1 * m[i] + (1.0 - cfg.beta1) * g;
            v[i] = cfg.beta2 * v[i] + (1.0 - cfg.beta2) * g * g;
            params[i] -= cfg.learning_rate * (m[i] / bc1) / ((v[i] / bc2).sqrt() + cfg.epsilon);
        }
    }
}

fn bench_fit(c: &mut Criterion) {
    let (x, y) = severity_sized_data();
    let cfg = train_cfg();

    // Determinism gate before timing: batched training must agree exactly
    // across job counts.
    let fit_at = |jobs: usize| {
        minipar::with_jobs(jobs, || {
            let mut net = dnn();
            net.fit_scalar(&x, &y, &cfg);
            net.predict(&x)
        })
    };
    assert_eq!(fit_at(1), fit_at(4), "batched fit diverged across jobs");

    let mut group = c.benchmark_group("mlkit_fit");
    group.sample_size(5);
    for jobs in [1usize, 4] {
        group.bench_function(format!("batched/jobs_{jobs}"), |b| {
            b.iter(|| {
                minipar::with_jobs(jobs, || {
                    let mut net = dnn();
                    net.fit_scalar(black_box(&x), black_box(&y), &cfg)
                })
            })
        });
    }
    group.bench_function("legacy_per_sample", |b| {
        b.iter(|| {
            let mut net = legacy::LegacyDense::new(FEATURES, &[16, 16, 32, 32, 1], 7);
            net.fit(black_box(&x), black_box(&y), &cfg)
        })
    });
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let a = Matrix::from_vec(
        512,
        256,
        (0..512 * 256).map(|i| ((i % 89) as f64) / 89.0).collect(),
    );
    let b_mat = Matrix::from_vec(
        256,
        128,
        (0..256 * 128).map(|i| ((i % 83) as f64) / 83.0).collect(),
    );
    let serial = minipar::with_jobs(1, || a.matmul(&b_mat));
    let wide = minipar::with_jobs(4, || a.matmul(&b_mat));
    assert_eq!(serial, wide, "matmul diverged across jobs");

    let mut group = c.benchmark_group("mlkit_matmul_512x256x128");
    for jobs in [1usize, 4] {
        group.bench_function(format!("jobs_{jobs}"), |b| {
            b.iter(|| minipar::with_jobs(jobs, || black_box(&a).matmul(black_box(&b_mat))))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fit, bench_matmul
);
criterion_main!(benches);
