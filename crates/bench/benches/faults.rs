//! Fault-path benches: what the retry engine costs when nothing fails,
//! and what quarantine-and-continue recovery saves over re-cleaning from
//! scratch after a corrupt feed.
//!
//! Run with `BENCH_JSON=BENCH_faults.json cargo bench -p nvd-bench --bench
//! faults` to emit the artifact CI uploads. Two gated questions:
//!
//! * `crawl_faults` — the fault-aware scheduler under an **empty** plan
//!   must stay within 5% of the plain engine (best and p99), so turning
//!   fault handling on costs nothing on the healthy path;
//! * `ingest_recover` — ingesting a corrupt delta through the warm
//!   [`CleanState`] quarantine path must beat batch re-cleaning the
//!   accumulated corpus from scratch.
//!
//! Both parity-assert before timing: the empty-plan crawl is outcome-
//! identical to the plain crawl, and the quarantine ingest is bit-identical
//! to the batch pipeline over the post-admission corpus.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use nvd_bench::{bench_corpus, BENCH_SEED};
use nvd_clean::cleaner::{CleanOptions, Cleaner};
use nvd_clean::names::OracleVerifier;
use nvd_clean::CleanState;
use nvd_synth::faults::corrupt_delta_stream;
use nvd_synth::SynthConfig;
use webarchive::{CrawlEngine, CrawlerSet, FaultPlan, RetryPolicy};

/// Same stream shape as the ingest benches: every from-scratch sample
/// re-runs the whole pipeline, so the corpus stays modest.
const RECOVER_SCALE: f64 = 0.01;
const FEED_COUNT: usize = 4;

fn options() -> CleanOptions {
    CleanOptions {
        run_backport: false,
        ..CleanOptions::default()
    }
}

fn crawl_no_fault_overhead(c: &mut Criterion) {
    let corpus = bench_corpus();
    let crawlers = CrawlerSet::builtin();
    let urls: Vec<&str> = corpus
        .database
        .iter()
        .flat_map(|e| e.references.iter().map(|r| r.url.as_str()))
        .collect();
    let plan = FaultPlan::new(BENCH_SEED);
    let plain = CrawlEngine::new(&corpus.archive, &crawlers);
    let faulty =
        CrawlEngine::new(&corpus.archive, &crawlers).with_faults(&plan, RetryPolicy::default());

    // Parity gate before timing: with nothing failing, the fault-aware
    // engine must reproduce the plain engine outcome for outcome.
    assert_eq!(
        faulty.crawl(&urls),
        plain.crawl(&urls),
        "empty fault plan changed crawl outcomes"
    );

    // 100 samples so the nearest-rank p99 is a real percentile — the 5%
    // overhead gate compares tails, not just bests.
    let mut group = c.benchmark_group("crawl_faults");
    group.sample_size(100);
    group.bench_function("new/no_fault", |b| {
        b.iter(|| minipar::with_jobs(1, || faulty.crawl(black_box(&urls))))
    });
    group.bench_function("legacy", |b| {
        b.iter(|| minipar::with_jobs(1, || plain.crawl(black_box(&urls))))
    });
    group.finish();
}

fn ingest_recover(c: &mut Criterion) {
    let fs = corrupt_delta_stream(
        &SynthConfig::with_scale(RECOVER_SCALE, BENCH_SEED),
        FEED_COUNT,
        BENCH_SEED,
    );
    let oracle = OracleVerifier::new(fs.stream.corpus.truth.vendor_alias_map());
    let archive = &fs.stream.corpus.archive;
    let cleaner = Cleaner::new(options());

    // The corruption rotation covers all four kinds over four feeds, so a
    // non-poisoned feed with quarantinable items always exists; recover
    // from the last such feed so the state is genuinely warm.
    let target = fs
        .feeds
        .iter()
        .rposition(|f| !f.poisoned && !f.quarantined_ids.is_empty())
        .expect("rotation guarantees a quarantinable feed");
    let label = fs.feeds[target].date.to_string();
    let json = fs.feeds[target].json.as_str();

    // Warm the state on the base and every (clean) feed before the target.
    let mut warmed = CleanState::new(options());
    let base: Vec<_> = fs.stream.base.iter().cloned().collect();
    warmed.apply_delta(&base, archive, &oracle);
    for feed in &fs.stream.feeds[..target] {
        warmed.apply_delta(&feed.entries(), archive, &oracle);
    }

    // Parity gate: quarantine-and-continue must equal batch-cleaning the
    // post-admission corpus, entry for entry and report field for field.
    let mut admitted_state = warmed.clone();
    let outcome = admitted_state
        .ingest_json(&label, json, archive, &oracle)
        .expect("target feed is not poisoned");
    assert!(
        outcome.quarantined.len() >= fs.feeds[target].quarantined_ids.len(),
        "target feed quarantined nothing"
    );
    let raw_after = admitted_state.database().clone();
    let batch = cleaner.clean(&raw_after, archive, &oracle);
    assert_eq!(
        outcome.outcome.database.as_slice(),
        batch.database.as_slice(),
        "quarantine ingest diverged from the batch pipeline"
    );
    assert_eq!(
        format!("{:?}", outcome.outcome.report),
        format!("{:?}", batch.report),
        "quarantine ingest report diverged from the batch pipeline"
    );

    let mut group = c.benchmark_group("ingest_recover");
    group.sample_size(100);
    group.bench_function("quarantine/jobs_1", |b| {
        b.iter_batched(
            || warmed.clone(),
            |mut state| {
                let out = minipar::with_jobs(1, || {
                    state.ingest_json(&label, black_box(json), archive, &oracle)
                });
                (state, out)
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("reclean", |b| {
        b.iter(|| minipar::with_jobs(1, || cleaner.clean(black_box(&raw_after), archive, &oracle)))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = crawl_no_fault_overhead, ingest_recover
);
criterion_main!(benches);
