//! §4.2 / §5.4 benches: Table 2 (candidate detection + pattern tabulation,
//! with the LCS-threshold ablation), Table 3 (cross-database mapping),
//! Tables 11, 12 and 16, and the blocked-vs-legacy name-sweep comparison.
//!
//! Run with `BENCH_JSON=BENCH_names.json cargo bench -p nvd-bench --bench
//! names` to emit the machine-readable artifact CI uploads. The
//! `names_{vendor,product}_sweep` groups answer the PR's two gated
//! questions: does the blocked engine (interned ids, materialised blocks,
//! banded Levenshtein) beat the frozen pre-blocking replica at one job,
//! and what headroom does the minipar fan-out add at four? Candidate
//! output is asserted bit-identical to the replica and across job counts
//! before timing starts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvd_analysis::vendor_study;
use nvd_bench::{bench_corpus, bench_experiments};
use nvd_clean::names::legacy::{find_product_candidates_legacy, find_vendor_candidates_legacy};
use nvd_clean::names::{
    find_product_candidates, find_vendor_candidates, NameMapping, OracleVerifier, PatternBreakdown,
    Verifier,
};

fn table2_vendor_patterns(c: &mut Criterion) {
    let corpus = bench_corpus();
    c.bench_function("table2_find_vendor_candidates", |b| {
        b.iter(|| find_vendor_candidates(black_box(&corpus.database)))
    });

    let candidates = find_vendor_candidates(&corpus.database);
    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let confirmed: Vec<bool> = candidates.iter().map(|x| oracle.confirm(x)).collect();
    c.bench_function("table2_tabulate_patterns", |b| {
        b.iter(|| PatternBreakdown::tabulate(black_box(&candidates), &confirmed))
    });

    // Ablation 3 (DESIGN.md): the LCS ≥ 3 split threshold.
    let mut group = c.benchmark_group("table2_lcs_threshold_ablation");
    for threshold in [2usize, 3, 4] {
        group.bench_function(format!("lcs_ge_{threshold}"), |b| {
            b.iter(|| {
                candidates
                    .iter()
                    .filter(|cand| cand.lcs_len >= threshold)
                    .count()
            })
        });
    }
    group.finish();
}

fn table3_name_scale(c: &mut Criterion) {
    let corpus = bench_corpus();
    let candidates = find_vendor_candidates(&corpus.database);
    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let confirmed: Vec<_> = candidates
        .iter()
        .filter(|x| oracle.confirm(x))
        .cloned()
        .collect();
    c.bench_function("table3_build_and_apply_mapping", |b| {
        b.iter(|| {
            let mapping = NameMapping::build_vendor(black_box(&confirmed), &corpus.database);
            let mut db = corpus.database.clone();
            mapping.apply(&mut db)
        })
    });
    let mapping = NameMapping::build_vendor(&confirmed, &corpus.database);
    c.bench_function("table3_cross_database_mapping", |b| {
        b.iter(|| {
            mapping.count_mappable(black_box(corpus.security_focus.vendors.iter()))
                + mapping.count_mappable(corpus.security_tracker.vendors.iter())
        })
    });
}

fn name_sweeps_blocked_vs_legacy(c: &mut Criterion) {
    let corpus = bench_corpus();
    let db = &corpus.database;

    // Parity gates before timing: the blocked sweeps must reproduce the
    // legacy replica's candidate lists byte for byte, at one job and four.
    let vendor_cands = minipar::with_jobs(1, || find_vendor_candidates(db));
    assert_eq!(
        vendor_cands,
        find_vendor_candidates_legacy(db),
        "blocked vendor sweep diverged from the legacy replica"
    );
    assert_eq!(
        vendor_cands,
        minipar::with_jobs(4, || find_vendor_candidates(db)),
        "vendor sweep diverged across job counts"
    );

    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let confirmed: Vec<_> = vendor_cands
        .iter()
        .filter(|x| oracle.confirm(x))
        .cloned()
        .collect();
    let mapping = NameMapping::build_vendor(&confirmed, db);
    let product_cands = minipar::with_jobs(1, || find_product_candidates(db, &mapping));
    assert_eq!(
        product_cands,
        find_product_candidates_legacy(db, &mapping),
        "blocked product sweep diverged from the legacy replica"
    );
    assert_eq!(
        product_cands,
        minipar::with_jobs(4, || find_product_candidates(db, &mapping)),
        "product sweep diverged across job counts"
    );

    let mut group = c.benchmark_group("names_vendor_sweep");
    group.sample_size(10);
    for jobs in [1usize, 4] {
        group.bench_function(format!("new/jobs_{jobs}"), |b| {
            b.iter(|| minipar::with_jobs(jobs, || find_vendor_candidates(black_box(db))))
        });
    }
    group.bench_function("legacy", |b| {
        b.iter(|| minipar::with_jobs(1, || find_vendor_candidates_legacy(black_box(db))))
    });
    group.finish();

    let mut group = c.benchmark_group("names_product_sweep");
    group.sample_size(10);
    for jobs in [1usize, 4] {
        group.bench_function(format!("new/jobs_{jobs}"), |b| {
            b.iter(|| minipar::with_jobs(jobs, || find_product_candidates(black_box(db), &mapping)))
        });
    }
    group.bench_function("legacy", |b| {
        b.iter(|| {
            minipar::with_jobs(1, || {
                find_product_candidates_legacy(black_box(db), &mapping)
            })
        })
    });
    group.finish();
}

fn tables_11_12_16(c: &mut Criterion) {
    let exps = bench_experiments();
    c.bench_function("table11_top_vendors", |b| {
        b.iter(|| {
            (
                vendor_study::top_vendors_by_cves(black_box(&exps.cleaned), 10),
                vendor_study::top_vendors_by_products(&exps.cleaned, 10),
            )
        })
    });
    c.bench_function("table12_mislabeled_breakdown", |b| {
        b.iter(|| vendor_study::mislabeled_breakdown(black_box(&exps)))
    });
    c.bench_function("table16_case_samples", |b| {
        b.iter(|| vendor_study::case_samples(black_box(&exps), 10))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = table2_vendor_patterns, table3_name_scale,
        name_sweeps_blocked_vs_legacy, tables_11_12_16
);
criterion_main!(benches);
