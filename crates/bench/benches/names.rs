//! §4.2 / §5.4 benches: Table 2 (candidate detection + pattern tabulation,
//! with the LCS-threshold ablation), Table 3 (cross-database mapping),
//! Tables 11, 12 and 16.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvd_analysis::vendor_study;
use nvd_bench::{bench_corpus, bench_experiments};
use nvd_clean::names::{
    find_vendor_candidates, NameMapping, OracleVerifier, PatternBreakdown, Verifier,
};

fn table2_vendor_patterns(c: &mut Criterion) {
    let corpus = bench_corpus();
    c.bench_function("table2_find_vendor_candidates", |b| {
        b.iter(|| find_vendor_candidates(black_box(&corpus.database)))
    });

    let candidates = find_vendor_candidates(&corpus.database);
    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let confirmed: Vec<bool> = candidates.iter().map(|x| oracle.confirm(x)).collect();
    c.bench_function("table2_tabulate_patterns", |b| {
        b.iter(|| PatternBreakdown::tabulate(black_box(&candidates), &confirmed))
    });

    // Ablation 3 (DESIGN.md): the LCS ≥ 3 split threshold.
    let mut group = c.benchmark_group("table2_lcs_threshold_ablation");
    for threshold in [2usize, 3, 4] {
        group.bench_function(format!("lcs_ge_{threshold}"), |b| {
            b.iter(|| {
                candidates
                    .iter()
                    .filter(|cand| cand.lcs_len >= threshold)
                    .count()
            })
        });
    }
    group.finish();
}

fn table3_name_scale(c: &mut Criterion) {
    let corpus = bench_corpus();
    let candidates = find_vendor_candidates(&corpus.database);
    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let confirmed: Vec<_> = candidates
        .iter()
        .filter(|x| oracle.confirm(x))
        .cloned()
        .collect();
    c.bench_function("table3_build_and_apply_mapping", |b| {
        b.iter(|| {
            let mapping = NameMapping::build_vendor(black_box(&confirmed), &corpus.database);
            let mut db = corpus.database.clone();
            mapping.apply(&mut db)
        })
    });
    let mapping = NameMapping::build_vendor(&confirmed, &corpus.database);
    c.bench_function("table3_cross_database_mapping", |b| {
        b.iter(|| {
            mapping.count_mappable(black_box(corpus.security_focus.vendors.iter()))
                + mapping.count_mappable(corpus.security_tracker.vendors.iter())
        })
    });
}

fn tables_11_12_16(c: &mut Criterion) {
    let exps = bench_experiments();
    c.bench_function("table11_top_vendors", |b| {
        b.iter(|| {
            (
                vendor_study::top_vendors_by_cves(black_box(&exps.cleaned), 10),
                vendor_study::top_vendors_by_products(&exps.cleaned, 10),
            )
        })
    });
    c.bench_function("table12_mislabeled_breakdown", |b| {
        b.iter(|| vendor_study::mislabeled_breakdown(black_box(&exps)))
    });
    c.bench_function("table16_case_samples", |b| {
        b.iter(|| vendor_study::case_samples(black_box(&exps), 10))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = table2_vendor_patterns, table3_name_scale, tables_11_12_16
);
criterion_main!(benches);
