//! Incremental-ingestion benches: absorbing one dated delta through the
//! carried [`CleanState`] (and the warm `nvd-serve` index) vs paying for a
//! clean-from-scratch of the accumulated corpus.
//!
//! Run with `BENCH_JSON=BENCH_ingest.json cargo bench -p nvd-bench --bench
//! ingest` to emit the artifact CI uploads. The gated question: once the
//! stream is warm, does re-cleaning after one delta beat batch-cleaning
//! the final corpus at one job — on the best observation *and* at the p99
//! tail? Equivalence is asserted before any timing: the incremental replay
//! must be bit-identical to the batch pipeline at every delta, and the
//! warm serve index digest-identical to a rebuild.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use nvd_bench::BENCH_SEED;
use nvd_clean::cleaner::{CleanOptions, Cleaner};
use nvd_clean::names::OracleVerifier;
use nvd_clean::CleanState;
use nvd_model::prelude::CveId;
use nvd_serve::ServeIndex;
use nvd_synth::delta::generate_delta_stream;
use nvd_synth::SynthConfig;

/// Stream shape: smaller than the batch-bench scale because every
/// from-scratch sample re-runs the whole pipeline, and deep enough that
/// the last delta arrives on a genuinely warm state.
const INGEST_SCALE: f64 = 0.01;
const FEED_COUNT: usize = 4;

fn options() -> CleanOptions {
    // The §4.3 backport is whole-corpus on both paths (its stratified
    // split is a global function of the label population), so the
    // incremental-vs-batch axis is measured with it off.
    CleanOptions {
        run_backport: false,
        ..CleanOptions::default()
    }
}

fn ingest_delta(c: &mut Criterion) {
    let stream = generate_delta_stream(
        &SynthConfig::with_scale(INGEST_SCALE, BENCH_SEED),
        FEED_COUNT,
    );
    let oracle = OracleVerifier::new(stream.corpus.truth.vendor_alias_map());
    let archive = &stream.corpus.archive;
    let cleaner = Cleaner::new(options());

    // Warm the state on everything but the last feed.
    let mut warmed = CleanState::new(options());
    let base: Vec<_> = stream.base.iter().cloned().collect();
    warmed.apply_delta(&base, archive, &oracle);
    let (head, last) = stream.feeds.split_at(FEED_COUNT - 1);
    for feed in head {
        warmed.apply_delta(&feed.entries(), archive, &oracle);
    }
    let last_entries = last[0].entries();

    // Parity gate: applying the last delta must equal batch-cleaning the
    // final corpus, entry for entry and report field for report field.
    let final_db = stream.final_database();
    let inc = warmed.clone().apply_delta(&last_entries, archive, &oracle);
    let batch = cleaner.clean(&final_db, archive, &oracle);
    assert_eq!(
        inc.database.as_slice(),
        batch.database.as_slice(),
        "incremental replay diverged from the batch pipeline"
    );
    assert_eq!(
        format!("{:?}", inc.report),
        format!("{:?}", batch.report),
        "incremental report diverged from the batch pipeline"
    );
    assert_eq!(
        inc.ledger, batch.ledger,
        "incremental quality ledger diverged from the batch pipeline"
    );

    // 100 samples so the nearest-rank p99 is a real percentile rather than
    // the max — the tail gate should tolerate one scheduler spike.
    let mut group = c.benchmark_group("ingest_delta");
    group.sample_size(100);
    // The warm-state clone is bench scaffolding (a real ingester applies
    // in place), so it is set up outside the timed section.
    group.bench_function("incremental/jobs_1", |b| {
        b.iter_batched(
            || warmed.clone(),
            |mut state| {
                let out = minipar::with_jobs(1, || {
                    state.apply_delta(black_box(&last_entries), archive, &oracle)
                });
                // Return the consumed state so its (large) drop happens
                // outside the timed section, like the output's.
                (state, out)
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("from_scratch", |b| {
        b.iter(|| minipar::with_jobs(1, || cleaner.clean(black_box(&final_db), archive, &oracle)))
    });
    group.finish();
}

fn ingest_serve(c: &mut Criterion) {
    let stream = generate_delta_stream(
        &SynthConfig::with_scale(INGEST_SCALE, BENCH_SEED),
        FEED_COUNT,
    );

    // Warm the serve state on everything but the last feed.
    let mut db = stream.base.clone();
    let mut state = ServeIndex::with_shards(&db, ServeIndex::DEFAULT_SHARDS).into_state();
    let (head, last) = stream.feeds.split_at(FEED_COUNT - 1);
    for feed in head {
        let entries = feed.entries();
        let touched: Vec<CveId> = entries.iter().map(|e| e.id).collect();
        for entry in entries {
            db.push(entry);
        }
        state.apply_delta(&db, &touched);
    }
    let last_entries = last[0].entries();
    let touched: Vec<CveId> = last_entries.iter().map(|e| e.id).collect();
    let mut final_db = db.clone();
    for entry in last_entries {
        final_db.push(entry);
    }

    // Parity gate: the warm update must be digest-identical to a rebuild.
    let mut updated = state.clone();
    updated.apply_delta(&final_db, &touched);
    assert_eq!(
        updated.digest(),
        ServeIndex::with_shards(&final_db, ServeIndex::DEFAULT_SHARDS).digest(),
        "warm serve update diverged from a rebuild"
    );

    let mut group = c.benchmark_group("ingest_serve");
    group.sample_size(100);
    group.bench_function("apply_delta", |b| {
        b.iter_batched(
            || state.clone(),
            |mut warm| {
                minipar::with_jobs(1, || warm.apply_delta(black_box(&final_db), &touched));
                warm
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("rebuild", |b| {
        b.iter(|| {
            minipar::with_jobs(1, || {
                ServeIndex::with_shards(black_box(&final_db), ServeIndex::DEFAULT_SHARDS)
            })
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ingest_delta, ingest_serve
);
criterion_main!(benches);
