//! §4.4 / §5.3 benches: Table 10 (top types), CWE rectification, the
//! description k-NN classifier (with the encoder-dimension ablation), and
//! Fig. 5.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvd_analysis::{pca_study, types_study};
use nvd_bench::{bench_corpus, bench_experiments};
use nvd_clean::{rectify_cwe, train_type_classifier, TypeClassifierOptions};
use nvd_model::cwe::CweCatalog;
use nvd_model::prelude::Severity;

fn table10_top_types(c: &mut Criterion) {
    let exps = bench_experiments();
    c.bench_function("table10_top_types_all_views", |b| {
        b.iter(|| {
            (
                types_study::top_types(
                    black_box(&exps),
                    types_study::ScoreView::V2,
                    Severity::High,
                    10,
                ),
                types_study::top_types(
                    &exps,
                    types_study::ScoreView::LabelledV3,
                    Severity::Critical,
                    10,
                ),
                types_study::top_types(
                    &exps,
                    types_study::ScoreView::RectifiedV3,
                    Severity::Critical,
                    10,
                ),
            )
        })
    });
    c.bench_function("fig5_pca_study", |b| {
        b.iter(|| pca_study::pca_study(black_box(&exps.cleaned)))
    });
}

fn cwe_rectification(c: &mut Criterion) {
    let corpus = bench_corpus();
    let catalog = CweCatalog::builtin();
    c.bench_function("cwe_rectification_pass", |b| {
        b.iter(|| {
            let mut db = corpus.database.clone();
            rectify_cwe(&mut db, &catalog).stats.total_corrected()
        })
    });
}

fn knn_type_classifier(c: &mut Criterion) {
    let corpus = bench_corpus();
    // Ablation 5 (DESIGN.md): encoder dimensionality.
    let mut group = c.benchmark_group("knn_type_classifier");
    group.sample_size(10);
    for dim in [128usize, 256, 512] {
        group.bench_function(format!("encoder_{dim}d"), |b| {
            b.iter(|| {
                train_type_classifier(
                    black_box(&corpus.database),
                    &TypeClassifierOptions {
                        dim,
                        max_samples: 800,
                        ..TypeClassifierOptions::default()
                    },
                )
                .map(|(_, r)| r.accuracy)
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = table10_top_types, cwe_rectification, knn_type_classifier
);
criterion_main!(benches);
