//! Read-path benches: the `nvd-serve` sharded indexes vs the frozen
//! linear-scan replica, under deterministic synthetic traffic.
//!
//! Run with `BENCH_JSON=BENCH_serve.json cargo bench -p nvd-bench --bench
//! serve` to emit the artifact CI uploads. The gated questions: do indexed
//! lookups beat the pre-index full-scan path at one job — on the best
//! observation *and* at the p99 tail (the latency number the NVD-users
//! study says practitioners feel) — and does index construction stay
//! bit-identical while fanning over minipar? Parity is asserted three ways
//! (engine vs replica, across shard counts, across job counts) before any
//! timing starts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvd_bench::bench_experiments;
use nvd_serve::{
    generate_workload, run_workload, LinearScan, QueryEngine, ServeIndex, WorkloadProfile,
};

/// Workload sizes: large enough that one iteration amortises per-query
/// noise, small enough that the full-scan replica finishes a sample set in
/// seconds on the 1-core CI container.
const POINT_QUERIES: usize = 20_000;
const MIXED_QUERIES: usize = 4_000;
const WORKLOAD_SEED: u64 = 0x5e11;

fn serve_read_path(c: &mut Criterion) {
    let exps = bench_experiments();
    let db = &exps.cleaned;

    let point = generate_workload(
        db,
        &WorkloadProfile::point_heavy(POINT_QUERIES),
        WORKLOAD_SEED,
    );
    let mixed = generate_workload(
        db,
        &WorkloadProfile::mixed(MIXED_QUERIES),
        WORKLOAD_SEED + 1,
    );

    // Parity gates before timing: the index must answer exactly like the
    // replica, at every shard count, from a build at any job count.
    let scan = LinearScan::new(db);
    let index = minipar::with_jobs(1, || ServeIndex::build(db));
    for workload in [&point, &mixed] {
        let want = run_workload(&scan, workload);
        assert_eq!(
            run_workload(&index, workload),
            want,
            "sharded index diverged from the linear-scan replica"
        );
        for shards in [1usize, 4, 64] {
            let resharded = ServeIndex::with_shards(db, shards);
            assert_eq!(
                run_workload(&resharded, workload),
                want,
                "answers changed at shard_count={shards}"
            );
        }
    }
    assert_eq!(
        minipar::with_jobs(1, || ServeIndex::build(db).digest()),
        minipar::with_jobs(4, || ServeIndex::build(db).digest()),
        "index build diverged across job counts"
    );

    let mut group = c.benchmark_group("serve_build");
    group.sample_size(20);
    for jobs in [1usize, 4] {
        group.bench_function(format!("new/jobs_{jobs}"), |b| {
            b.iter(|| minipar::with_jobs(jobs, || ServeIndex::build(black_box(db))))
        });
    }
    group.finish();

    // Lookup-heavy traffic: the headline "faster NVD interface" number.
    // More samples than the throughput benches so the shim's p99 has
    // texture — the gate compares tails, not just bests.
    let mut group = c.benchmark_group("serve_point_lookup");
    group.sample_size(40);
    group.bench_function("new/jobs_1", |b| {
        b.iter(|| minipar::with_jobs(1, || run_workload(&index, black_box(&point))))
    });
    group.bench_function("legacy", |b| {
        b.iter(|| minipar::with_jobs(1, || run_workload(&scan, black_box(&point))))
    });
    group.finish();

    let mut group = c.benchmark_group("serve_mixed");
    group.sample_size(20);
    group.bench_function("new/jobs_1", |b| {
        b.iter(|| minipar::with_jobs(1, || run_workload(&index, black_box(&mixed))))
    });
    group.bench_function("legacy", |b| {
        b.iter(|| minipar::with_jobs(1, || run_workload(&scan, black_box(&mixed))))
    });
    group.finish();

    // Single-query texture outside the workload loop: one hot point lookup
    // (zipf rank 0 equivalent) against the same lookup on the replica.
    let hot = point
        .iter()
        .find_map(|q| match q {
            nvd_serve::Query::PointLookup(id) if index.get(*id).is_some() => Some(*id),
            _ => None,
        })
        .expect("point workload contains at least one hit");
    let mut group = c.benchmark_group("serve_single_lookup");
    group.sample_size(40);
    group.bench_function("new", |b| {
        b.iter(|| index.execute(black_box(&nvd_serve::Query::PointLookup(hot))))
    });
    group.bench_function("legacy", |b| {
        b.iter(|| scan.execute(black_box(&nvd_serve::Query::PointLookup(hot))))
    });
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let exps = bench_experiments();
    let db = &exps.cleaned;
    let mut group = c.benchmark_group("serve_workload_gen");
    group.sample_size(10);
    group.bench_function("mixed_100k", |b| {
        b.iter(|| {
            generate_workload(
                black_box(db),
                &WorkloadProfile::mixed(100_000),
                WORKLOAD_SEED,
            )
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = serve_read_path, workload_generation
);
criterion_main!(benches);
