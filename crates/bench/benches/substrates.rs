//! Substrate throughput: CVSS scoring (Table 1 banding), text encoding,
//! string distances, and PCA (the machinery under Fig. 5).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlkit::matrix::Matrix;
use mlkit::pca::Pca;
use nvd_model::metrics::Severity;
use textkit::distance::{levenshtein, longest_common_substring_len};
use textkit::encoder::SentenceEncoder;
use textkit::preprocess::preprocess;

fn bench_cvss(c: &mut Criterion) {
    let v2s = cvss::all_v2_vectors();
    let v3s = cvss::all_v3_vectors();
    c.bench_function("table1_score_all_v2_vectors", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for v in &v2s {
                let (s, band) = cvss::score_v2(black_box(v));
                acc += s + band as u8 as f64;
            }
            acc
        })
    });
    c.bench_function("table1_score_all_v3_vectors", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for v in &v3s {
                let (s, _) = cvss::score_v3(black_box(v));
                acc += s;
            }
            acc
        })
    });
    c.bench_function("table1_severity_banding", |b| {
        b.iter(|| {
            let mut crit = 0usize;
            for i in 0..1000 {
                let score = (i % 101) as f64 / 10.0;
                if Severity::from_v3_score(black_box(score)) == Severity::Critical {
                    crit += 1;
                }
            }
            crit
        })
    });
}

fn bench_text(c: &mut Criterion) {
    let desc = "SQL injection vulnerability in index.php in ExampleCMS 2.1 allows \
                remote attackers to execute arbitrary SQL commands via the id parameter.";
    let encoder = SentenceEncoder::default();
    c.bench_function("encoder_512d_description", |b| {
        b.iter(|| encoder.encode(black_box(desc)))
    });
    c.bench_function("preprocess_description", |b| {
        b.iter(|| preprocess(black_box(desc)))
    });
    c.bench_function("levenshtein_vendor_pair", |b| {
        b.iter(|| {
            levenshtein(
                black_box("schneider_electric"),
                black_box("chneider_electric"),
            )
        })
    });
    c.bench_function("lcs_vendor_pair", |b| {
        b.iter(|| {
            longest_common_substring_len(
                black_box("lan_management_system"),
                black_box("lms_manager"),
            )
        })
    });
}

fn bench_pca(c: &mut Criterion) {
    // Fig. 5 machinery: 13-d → 3-d over 2 000 samples.
    let n = 2000;
    let d = 13;
    let data: Vec<f64> = (0..n * d)
        .map(|i| ((i * 2_654_435_761usize) % 1000) as f64 / 1000.0)
        .collect();
    let x = Matrix::from_vec(n, d, data);
    c.bench_function("fig5_pca_fit_project", |b| {
        b.iter(|| {
            let pca = Pca::fit(black_box(&x), 3).expect("fits");
            pca.transform(&x)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cvss, bench_text, bench_pca
);
criterion_main!(benches);
