//! §4.1 crawl-engine benches: the scheduled batch crawl versus the frozen
//! pre-engine per-entry loops, plus the scheduler simulation on its own.
//!
//! Run with `BENCH_JSON=BENCH_crawl.json cargo bench -p nvd-bench --bench
//! crawl` to emit the machine-readable artifact CI uploads. The
//! `crawl_estimate` group answers the PR's gated question: does the
//! scheduled engine (per-host liveness/dispatch memoisation, allocation-free
//! outcomes) beat the legacy per-entry fetch loops at one job, and what
//! headroom does the minipar fan-out add at four? Estimates are asserted
//! bit-identical to the legacy replica and across job counts before timing
//! starts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvd_bench::bench_corpus;
use nvd_clean::disclosure::{legacy, DisclosureEstimator};
use webarchive::{schedule, CrawlerSet, DEFAULT_WINDOW};

fn crawl_estimate_new_vs_legacy(c: &mut Criterion) {
    let corpus = bench_corpus();
    let db = &corpus.database;
    let estimator = DisclosureEstimator::new(&corpus.archive);

    // Parity gates before timing: the scheduled engine must reproduce the
    // pre-engine estimates byte for byte, at one job and four.
    let estimates = minipar::with_jobs(1, || estimator.estimate_all(db));
    assert_eq!(
        estimates,
        legacy::estimate_all_legacy(&estimator, db),
        "scheduled crawl diverged from the pre-engine loops"
    );
    assert_eq!(
        estimates,
        minipar::with_jobs(4, || estimator.estimate_all(db)),
        "scheduled crawl diverged across job counts"
    );

    let mut group = c.benchmark_group("crawl_estimate");
    group.sample_size(10);
    for jobs in [1usize, 4] {
        group.bench_function(format!("new/jobs_{jobs}"), |b| {
            b.iter(|| minipar::with_jobs(jobs, || estimator.estimate_all(black_box(db))))
        });
    }
    group.bench_function("legacy", |b| {
        b.iter(|| minipar::with_jobs(1, || legacy::estimate_all_legacy(&estimator, black_box(db))))
    });
    group.finish();
}

fn crawl_schedule_simulation(c: &mut Criterion) {
    let corpus = bench_corpus();
    let urls: Vec<&str> = corpus
        .database
        .iter()
        .flat_map(|e| e.references.iter().map(|r| r.url.as_str()))
        .collect();
    let model = corpus.archive.latency();

    // Politeness queues + the bounded window must still overlap hosts: the
    // virtual-clock makespan has to come in well under a serial crawl.
    let plan = schedule(&urls, model, DEFAULT_WINDOW);
    assert_eq!(plan.completions.len(), urls.len());
    assert!(
        plan.makespan * 4 < plan.serial_ticks(),
        "window {} over {} hosts should overlap >4x: makespan {} vs serial {}",
        DEFAULT_WINDOW,
        plan.hosts.len(),
        plan.makespan,
        plan.serial_ticks()
    );

    c.bench_function("crawl_schedule_simulation", |b| {
        b.iter(|| schedule(black_box(&urls), model, DEFAULT_WINDOW))
    });

    let crawlers = CrawlerSet::builtin();
    c.bench_function("crawl_engine_batch", |b| {
        b.iter(|| webarchive::CrawlEngine::new(&corpus.archive, &crawlers).crawl(black_box(&urls)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = crawl_estimate_new_vs_legacy, crawl_schedule_simulation
);
criterion_main!(benches);
