//! Quality-ledger benches: what the typed issue-assessment layer costs on
//! top of the silent cleaning pipeline.
//!
//! Run with `BENCH_JSON=BENCH_quality.json cargo bench -p nvd-bench
//! --bench quality` to emit the artifact CI uploads. The gated question:
//! assembling the per-CVE [`QualityLedger`] during `Cleaner::clean` —
//! every detector pass plus evidence formatting — must stay within 10% of
//! [`Cleaner::clean_into`] with the [`NullSink`] (the silent path, which
//! skips assessment entirely), on the best observation *and* at the p99
//! tail. Parity is asserted before timing: both paths must produce the
//! identical database and report, and the ledger must be bit-identical
//! across job counts.
//!
//! [`QualityLedger`]: nvd_clean::QualityLedger
//! [`NullSink`]: nvd_clean::NullSink

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvd_bench::BENCH_SEED;
use nvd_clean::cleaner::{CleanOptions, Cleaner};
use nvd_clean::names::OracleVerifier;
use nvd_clean::NullSink;
use nvd_synth::{generate, SynthConfig};

/// Same scale as the ingest benches: every sample re-runs the whole
/// pipeline, so the corpus stays modest.
const QUALITY_SCALE: f64 = 0.01;

fn options() -> CleanOptions {
    // Backport off: its stratified training pass dominates wall-clock and
    // is identical on both sides, which would only dilute the measured
    // ledger overhead.
    CleanOptions {
        run_backport: false,
        ..CleanOptions::default()
    }
}

fn quality_overhead(c: &mut Criterion) {
    let corpus = generate(&SynthConfig::with_scale(QUALITY_SCALE, BENCH_SEED));
    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let archive = &corpus.archive;
    let cleaner = Cleaner::new(options());

    // Parity gates before timing: the ledger path must not perturb the
    // pipeline output, and the ledger itself must be job-count-invariant.
    let ledgered = minipar::with_jobs(1, || cleaner.clean(&corpus.database, archive, &oracle));
    let (silent_db, silent_report) = minipar::with_jobs(1, || {
        cleaner.clean_into(&corpus.database, archive, &oracle, &mut NullSink)
    });
    assert_eq!(
        ledgered.database.as_slice(),
        silent_db.as_slice(),
        "ledger emission changed the cleaned database"
    );
    assert_eq!(
        format!("{:?}", ledgered.report),
        format!("{silent_report:?}"),
        "ledger emission changed the report"
    );
    assert!(
        !ledgered.ledger.is_empty(),
        "the degraded corpus must surface quality issues"
    );
    let wide = minipar::with_jobs(4, || cleaner.clean(&corpus.database, archive, &oracle));
    assert_eq!(
        ledgered.ledger, wide.ledger,
        "quality ledger diverged across job counts"
    );

    // 100 samples so the nearest-rank p99 is a real percentile — the 10%
    // overhead gate compares tails, not just bests.
    let mut group = c.benchmark_group("quality_clean");
    group.sample_size(100);
    group.bench_function("ledger/jobs_1", |b| {
        b.iter(|| {
            minipar::with_jobs(1, || {
                cleaner.clean(black_box(&corpus.database), archive, &oracle)
            })
        })
    });
    group.bench_function("ledger/jobs_4", |b| {
        b.iter(|| {
            minipar::with_jobs(4, || {
                cleaner.clean(black_box(&corpus.database), archive, &oracle)
            })
        })
    });
    group.bench_function("silent", |b| {
        b.iter(|| {
            minipar::with_jobs(1, || {
                cleaner.clean_into(black_box(&corpus.database), archive, &oracle, &mut NullSink)
            })
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = quality_overhead
);
criterion_main!(benches);
