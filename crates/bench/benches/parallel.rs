//! 1-thread vs N-thread comparison for the pipeline's parallel stages.
//!
//! Run with `BENCH_JSON=BENCH_parallel.json cargo bench -p nvd-bench
//! --bench parallel` to also emit the machine-readable per-PR perf
//! artifact CI uploads. `minipar::with_jobs` pins the job count per
//! measurement so one process compares both modes under identical
//! conditions; outputs are asserted bit-identical before timing starts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvd_bench::{bench_corpus, BENCH_SCALE, BENCH_SEED};
use nvd_clean::cleaner::Cleaner;
use nvd_clean::disclosure::DisclosureEstimator;
use nvd_clean::names::OracleVerifier;
use nvd_synth::{generate, SynthConfig};

/// Job counts compared by every bench in this file.
const JOB_COUNTS: [usize; 2] = [1, 4];

fn bench_generation(c: &mut Criterion) {
    let config = SynthConfig::with_scale(BENCH_SCALE, BENCH_SEED);
    // Determinism gate before timing: both widths must agree exactly.
    let serial = minipar::with_jobs(1, || generate(&config).digest());
    let wide = minipar::with_jobs(4, || generate(&config).digest());
    assert_eq!(serial, wide, "corpus generation diverged across job counts");

    let mut group = c.benchmark_group("parallel_generate");
    for jobs in JOB_COUNTS {
        group.bench_function(format!("jobs_{jobs}"), |b| {
            b.iter(|| minipar::with_jobs(jobs, || generate(black_box(&config))))
        });
    }
    group.finish();
}

fn bench_disclosure(c: &mut Criterion) {
    let corpus = bench_corpus();
    let mut group = c.benchmark_group("parallel_disclosure");
    for jobs in JOB_COUNTS {
        group.bench_function(format!("jobs_{jobs}"), |b| {
            b.iter(|| {
                minipar::with_jobs(jobs, || {
                    DisclosureEstimator::new(&corpus.archive).estimate_all(&corpus.database)
                })
            })
        });
    }
    group.finish();
}

fn bench_full_clean(c: &mut Criterion) {
    let corpus = bench_corpus();
    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let mut group = c.benchmark_group("parallel_clean");
    group.sample_size(3);
    for jobs in JOB_COUNTS {
        group.bench_function(format!("jobs_{jobs}"), |b| {
            b.iter(|| {
                minipar::with_jobs(jobs, || {
                    Cleaner::default().clean(&corpus.database, &corpus.archive, &oracle)
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = bench_generation, bench_disclosure, bench_full_clean
);
criterion_main!(benches);
