//! Text-pipeline throughput: buffer-reuse preprocessing vs the legacy
//! allocate-per-token replica, corpus-level encoding vs the per-call path,
//! and the parallel CWE rectification pass.
//!
//! Run with `BENCH_JSON=BENCH_textkit.json cargo bench -p nvd-bench --bench
//! textkit` to emit the machine-readable artifact CI uploads. Three
//! questions are answered per run:
//!
//! 1. **Does buffer reuse win on its own?** `textkit_preprocess/new/jobs_1`
//!    vs `textkit_preprocess/legacy` compares the single-pass
//!    scratch-buffer pipeline against a faithful replica of the
//!    pre-refactor composition (full-text lowercase `String`, expanded
//!    `String`, one `String` per token, one per stem), both pinned to one
//!    job — the win must not depend on thread count.
//! 2. **Does the corpus API pay off?** `textkit_corpus_encode/new/*` builds
//!    one `PreprocessedCorpus` (preprocess once, intern once) and feeds
//!    both the IDF fit and the encoding, vs `legacy` which re-preprocesses
//!    per call exactly like the old `with_idf_corpus` + `encode` pair.
//! 3. **Does `rectify_cwe` scale?** `textkit_rectify_cwe/jobs_{1,4}` times
//!    the parallel mine + serial apply pass (outputs asserted bit-identical
//!    across widths before timing starts).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvd_bench::bench_corpus;
use nvd_clean::rectify_cwe;
use nvd_model::cwe::CweCatalog;
use textkit::encoder::{Idf, PreprocessedCorpus, SentenceEncoder};
use textkit::preprocess::Preprocessor;

/// The legacy preprocessing composition this PR deleted, replicated from
/// the old `preprocess` body: expand-contractions `String` (which itself
/// lowercases the full text first), a `Vec<String>` of tokens, and one more
/// `String` per stem. Lives only in this bench as the baseline the
/// buffer-reuse pipeline must beat.
mod legacy {
    use textkit::preprocess::expand_contractions;
    use textkit::{is_stopword, stem, tokenize};

    pub fn preprocess(text: &str) -> Vec<String> {
        let expanded = expand_contractions(text);
        tokenize(&expanded)
            .into_iter()
            .filter(|t| !is_stopword(t))
            .map(|t| stem(&t))
            .collect()
    }
}

/// Every description in the benchmark corpus (analyst and evaluator text).
fn corpus_texts() -> Vec<String> {
    bench_corpus()
        .database
        .iter()
        .flat_map(|e| e.descriptions.iter().map(|d| d.text.clone()))
        .collect()
}

fn bench_preprocess(c: &mut Criterion) {
    let texts = corpus_texts();
    assert!(texts.len() > 500, "bench corpus too small: {}", texts.len());

    // Parity gate before timing: the buffer-reuse pipeline must match the
    // legacy replica token-for-token on every description.
    let mut pre = Preprocessor::new();
    for t in &texts {
        let mut new_terms: Vec<String> = Vec::new();
        pre.for_each_term(t, |term| new_terms.push(term.to_owned()));
        assert_eq!(new_terms, legacy::preprocess(t), "term stream diverged");
    }

    let mut group = c.benchmark_group("textkit_preprocess");
    group.bench_function("new/jobs_1", |b| {
        b.iter(|| {
            minipar::with_jobs(1, || {
                let mut hash = 0usize;
                for t in &texts {
                    pre.for_each_term(black_box(t), |term| hash ^= term.len());
                }
                hash
            })
        })
    });
    group.bench_function("legacy", |b| {
        b.iter(|| {
            minipar::with_jobs(1, || {
                let mut hash = 0usize;
                for t in &texts {
                    for term in legacy::preprocess(black_box(t)) {
                        hash ^= term.len();
                    }
                }
                hash
            })
        })
    });
    group.finish();
}

fn bench_corpus_encode(c: &mut Criterion) {
    // A slice of the corpus keeps the 512-wide scatter affordable per
    // sample while still exercising thousands of term occurrences.
    let texts = corpus_texts();
    let texts: Vec<&str> = texts.iter().take(256).map(String::as_str).collect();
    const DIM: usize = 256;
    const SEED: u64 = 0x5e17;

    // Determinism gates: corpus encodings must be bit-identical across job
    // counts AND bit-identical to the per-call encode path.
    let encode_corpus_at = |jobs: usize| {
        minipar::with_jobs(jobs, || {
            let corpus = PreprocessedCorpus::build(texts.iter().copied(), SEED);
            let enc = SentenceEncoder::new(DIM, SEED).with_idf(Idf::fit_corpus(&corpus));
            enc.encode_corpus(&corpus)
        })
    };
    let serial = encode_corpus_at(1);
    assert_eq!(
        serial,
        encode_corpus_at(4),
        "corpus encode diverged across jobs"
    );
    let legacy_enc = SentenceEncoder::new(DIM, SEED).with_idf_corpus(texts.iter().copied());
    for (i, t) in texts.iter().enumerate() {
        assert_eq!(
            serial[i],
            legacy_enc.encode(t),
            "doc {i} diverged from per-call path"
        );
    }

    let mut group = c.benchmark_group("textkit_corpus_encode");
    group.sample_size(10);
    for jobs in [1usize, 4] {
        group.bench_function(format!("new/jobs_{jobs}"), |b| {
            b.iter(|| {
                minipar::with_jobs(jobs, || {
                    let corpus = PreprocessedCorpus::build(black_box(&texts).iter().copied(), SEED);
                    let enc = SentenceEncoder::new(DIM, SEED).with_idf(Idf::fit_corpus(&corpus));
                    enc.encode_corpus(&corpus)
                })
            })
        });
    }
    group.bench_function("legacy", |b| {
        // The old shape: with_idf_corpus preprocesses every text for the
        // IDF fit, then encode() preprocesses each text again.
        b.iter(|| {
            minipar::with_jobs(1, || {
                let enc = SentenceEncoder::new(DIM, SEED)
                    .with_idf_corpus(black_box(&texts).iter().copied());
                texts.iter().map(|t| enc.encode(t)).collect::<Vec<_>>()
            })
        })
    });
    group.finish();
}

fn bench_rectify_cwe(c: &mut Criterion) {
    let corpus = bench_corpus();
    let catalog = CweCatalog::builtin();

    // Determinism gate: corrections and rectified databases must agree
    // exactly between the inline path and a wide pool.
    let rectify_at = |jobs: usize| {
        minipar::with_jobs(jobs, || {
            let mut db = corpus.database.clone();
            let out = rectify_cwe(&mut db, &catalog);
            (
                out.corrections,
                out.stats,
                db.iter().cloned().collect::<Vec<_>>(),
            )
        })
    };
    assert_eq!(
        rectify_at(1),
        rectify_at(4),
        "rectify_cwe diverged across jobs"
    );

    let mut group = c.benchmark_group("textkit_rectify_cwe");
    group.sample_size(10);
    for jobs in [1usize, 4] {
        group.bench_function(format!("jobs_{jobs}"), |b| {
            b.iter(|| {
                minipar::with_jobs(jobs, || {
                    let mut db = corpus.database.clone();
                    rectify_cwe(black_box(&mut db), &catalog)
                        .stats
                        .total_corrected()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_preprocess, bench_corpus_encode, bench_rectify_cwe
);
criterion_main!(benches);
