//! Shared fixtures for the benchmark harness.
//!
//! Each Criterion bench regenerates one of the paper's tables or figures;
//! fixtures here keep corpus generation out of the measured sections and
//! pin the scales/seeds so numbers are comparable across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use nvd_analysis::Experiments;
use nvd_synth::{generate, SynthConfig, SynthCorpus};

/// The benchmark corpus scale: large enough for stable statistics, small
/// enough that every bench target finishes in seconds.
pub const BENCH_SCALE: f64 = 0.02;

/// The benchmark seed.
pub const BENCH_SEED: u64 = 0xbe9c;

/// Generates the standard benchmark corpus.
pub fn bench_corpus() -> SynthCorpus {
    generate(&SynthConfig::with_scale(BENCH_SCALE, BENCH_SEED))
}

/// The full-pipeline fixture for analysis benches, via the shared
/// `Experiments` cache: bench targets that need it more than once per
/// process pay for one generation + clean.
pub fn bench_experiments() -> Arc<Experiments> {
    Experiments::shared(BENCH_SCALE, BENCH_SEED)
}
