//! Shared fixtures for the benchmark harness.
//!
//! Each Criterion bench regenerates one of the paper's tables or figures;
//! fixtures here keep corpus generation out of the measured sections and
//! pin the scales/seeds so numbers are comparable across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nvd_analysis::Experiments;
use nvd_synth::{generate, SynthConfig, SynthCorpus};

/// The benchmark corpus scale: large enough for stable statistics, small
/// enough that every bench target finishes in seconds.
pub const BENCH_SCALE: f64 = 0.02;

/// The benchmark seed.
pub const BENCH_SEED: u64 = 0xbe9c;

/// Generates the standard benchmark corpus.
pub fn bench_corpus() -> SynthCorpus {
    generate(&SynthConfig::with_scale(BENCH_SCALE, BENCH_SEED))
}

/// Runs the full pipeline once (fast profile) for analysis benches.
pub fn bench_experiments() -> Experiments {
    Experiments::run_fast(BENCH_SCALE, BENCH_SEED)
}
