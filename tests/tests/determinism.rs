//! Determinism: equal seeds reproduce everything bit-for-bit; different
//! seeds genuinely differ; and the blocked §4.2 name-matching engine is
//! pinned to the legacy serial sweep by a proptest oracle.

use nvd_clean::cleaner::Cleaner;
use nvd_clean::names::legacy::{find_product_candidates_legacy, find_vendor_candidates_legacy};
use nvd_clean::names::{
    find_product_candidates, find_vendor_candidates, NameMapping, OracleVerifier, Verifier,
};
use nvd_model::prelude::{CpeName, CveEntry, CveId, Database};
use nvd_synth::{generate, SynthConfig};
use proptest::prelude::*;

#[test]
fn same_seed_same_corpus_and_cleaning() {
    let run = || {
        let corpus = generate(&SynthConfig::with_scale(0.01, 777));
        let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
        let out = Cleaner::default().clean(&corpus.database, &corpus.archive, &oracle);
        let sev = out.report.severity.as_ref().unwrap();
        (
            out.database.iter().cloned().collect::<Vec<_>>(),
            out.report.disclosure.clone(),
            sev.predictions.clone(),
            sev.chosen,
            out.report.cwe.corrections.clone(),
            out.ledger.clone(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "cleaned entries differ");
    assert_eq!(a.1, b.1, "disclosure estimates differ");
    assert_eq!(a.2, b.2, "severity predictions differ");
    assert_eq!(a.3, b.3, "chosen model differs");
    assert_eq!(a.4, b.4, "CWE corrections differ");
    assert_eq!(a.5, b.5, "quality ledgers differ");
}

#[test]
fn pipeline_is_bit_identical_across_job_counts() {
    // End-to-end version of the minipar determinism contract: corpus
    // generation AND the full cleaning pipeline must agree exactly between
    // the inline path and a wide pool (the CI perf-smoke job re-checks the
    // same property across processes via the NVD_JOBS env var).
    let run = |jobs: usize| {
        minipar::with_jobs(jobs, || {
            let corpus = generate(&SynthConfig::with_scale(0.01, 777));
            let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
            let out = Cleaner::default().clean(&corpus.database, &corpus.archive, &oracle);
            (
                corpus.digest(),
                out.database.iter().cloned().collect::<Vec<_>>(),
                out.report.disclosure.clone(),
                out.report.severity.as_ref().unwrap().predictions.clone(),
                out.report.names.vendor_confirmed,
                out.ledger.clone(),
            )
        })
    };
    let serial = run(1);
    let wide = run(6);
    assert_eq!(serial.0, wide.0, "corpus digest diverged");
    assert_eq!(serial.1, wide.1, "cleaned entries diverged");
    assert_eq!(serial.2, wide.2, "disclosure estimates diverged");
    assert_eq!(serial.3, wide.3, "severity predictions diverged");
    assert_eq!(serial.4, wide.4, "name verification diverged");
    assert_eq!(serial.5, wide.5, "quality ledger diverged across jobs");
}

#[test]
fn cwe_rectification_is_bit_identical_across_job_counts() {
    // The mining half of rectify_cwe fans out over minipar; corrections,
    // statistics, and the mutated databases must agree exactly between the
    // inline path and a wide pool.
    let corpus = generate(&SynthConfig::with_scale(0.01, 4242));
    let catalog = nvd_model::cwe::CweCatalog::builtin();
    let run = |jobs: usize| {
        minipar::with_jobs(jobs, || {
            let mut db = corpus.database.clone();
            let outcome = nvd_clean::rectify_cwe(&mut db, &catalog);
            let entries: Vec<_> = db.iter().cloned().collect();
            (outcome.corrections, outcome.stats, entries)
        })
    };
    let serial = run(1);
    let wide = run(4);
    assert_eq!(serial.0, wide.0, "CWE corrections diverged");
    assert_eq!(serial.1, wide.1, "CWE statistics diverged");
    assert_eq!(serial.2, wide.2, "rectified entries diverged");
}

#[test]
fn idf_fit_is_bit_identical_across_job_counts() {
    // The IDF fit is a minipar par_fold over fixed 128-document chunks;
    // document counts and every weight must be bit-identical at any width
    // (and identical to the serial add_document fold).
    use textkit::encoder::{Idf, PreprocessedCorpus};
    let corpus = generate(&SynthConfig::with_scale(0.01, 4242));
    let texts: Vec<&str> = corpus
        .database
        .iter()
        .filter_map(|e| e.primary_description())
        .collect();
    let pre = PreprocessedCorpus::build(texts.iter().copied(), 0x5e17);
    // Weight probes: every unigram hash the corpus knows plus one unseen.
    let probes: Vec<u64> = (0..pre.interner().len() as u32)
        .map(|id| pre.unigram_hash(id))
        .chain([0xdead_beef])
        .collect();
    let weights_at = |jobs: usize| {
        minipar::with_jobs(jobs, || {
            let idf = Idf::fit_corpus(&pre);
            (
                idf.len(),
                probes
                    .iter()
                    .map(|&h| idf.weight(h).to_bits())
                    .collect::<Vec<u64>>(),
            )
        })
    };
    let serial = weights_at(1);
    let wide = weights_at(4);
    assert_eq!(serial.0, wide.0, "document count diverged");
    assert_eq!(serial.1, wide.1, "IDF weights diverged");

    let mut reference = Idf::new(0x5e17);
    for t in &texts {
        reference.add_document(&textkit::preprocess(t));
    }
    assert_eq!(reference.len(), serial.0);
    let ref_weights: Vec<u64> = probes
        .iter()
        .map(|&h| reference.weight(h).to_bits())
        .collect();
    assert_eq!(
        ref_weights, serial.1,
        "parallel fit diverged from serial fold"
    );
}

#[test]
fn name_candidates_are_bit_identical_across_job_counts() {
    // The §4.2 blocked engine fans pair proposal, signal annotation, and
    // the per-vendor product sweeps over minipar; both candidate lists
    // must agree exactly between the inline path and a wide pool.
    let corpus = generate(&SynthConfig::with_scale(0.01, 4242));
    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let run = |jobs: usize| {
        minipar::with_jobs(jobs, || {
            let vendor_cands = find_vendor_candidates(&corpus.database);
            let confirmed: Vec<_> = vendor_cands
                .iter()
                .filter(|c| oracle.confirm(c))
                .cloned()
                .collect();
            let mapping = NameMapping::build_vendor(&confirmed, &corpus.database);
            let product_cands = find_product_candidates(&corpus.database, &mapping);
            (vendor_cands, product_cands)
        })
    };
    let serial = run(1);
    let wide = run(4);
    assert_eq!(serial.0, wide.0, "vendor candidates diverged");
    assert_eq!(serial.1, wide.1, "product candidates diverged");
    // And the blocked engine must reproduce the legacy serial sweep.
    assert_eq!(
        serial.0,
        find_vendor_candidates_legacy(&corpus.database),
        "vendor candidates diverged from the legacy replica"
    );
}

#[test]
fn scheduled_crawl_is_bit_identical_across_job_counts() {
    // The §4.1 disclosure estimator batches every reference through the
    // webarchive crawl scheduler and fans fetch + extraction over minipar;
    // the per-CVE estimate map must agree exactly between the inline path
    // and a wide pool, and with the frozen pre-engine per-entry loops.
    use nvd_clean::disclosure::{legacy, DisclosureEstimator};
    let corpus = generate(&SynthConfig::with_scale(0.01, 4242));
    let run = |jobs: usize| {
        minipar::with_jobs(jobs, || {
            DisclosureEstimator::new(&corpus.archive).estimate_all(&corpus.database)
        })
    };
    let serial = run(1);
    let wide = run(4);
    assert_eq!(serial, wide, "disclosure estimates diverged across jobs");
    let estimator = DisclosureEstimator::new(&corpus.archive);
    assert_eq!(
        serial,
        legacy::estimate_all_legacy(&estimator, &corpus.database),
        "scheduled crawl diverged from the pre-engine loops"
    );
}

/// Arbitrary small databases over a deliberately tiny alphabet, so the
/// blocking heuristics collide constantly: special-character variants,
/// shared products, prefixes, near-duplicate spellings, digit guards.
/// (The vendored proptest shim has no `collection::vec`, so this is a
/// hand-rolled [`Strategy`] drawing a variable number of CPE pairs.)
#[derive(Debug)]
struct ArbSmallDb;

impl Strategy for ArbSmallDb {
    type Value = Database;

    fn new_value(&self, runner: &mut proptest::test_runner::TestRunner) -> Database {
        let n = (1usize..24).new_value(runner);
        let mut db = Database::new();
        for i in 0..n {
            let vendor = "[ab][abc_!]{0,6}".new_value(runner);
            let product = "[ab][ab0-1_]{0,4}".new_value(runner);
            let mut e = CveEntry::new(
                CveId::new(2019, (i + 1) as u32),
                "2019-01-01".parse().unwrap(),
            );
            e.affected
                .push(CpeName::application(vendor.as_str(), product.as_str()));
            db.push(e);
        }
        db
    }
}

proptest! {
    #[test]
    fn blocked_vendor_sweep_equals_legacy_pair_set(db in ArbSmallDb) {
        let legacy = find_vendor_candidates_legacy(&db);
        let serial = minipar::with_jobs(1, || find_vendor_candidates(&db));
        let wide = minipar::with_jobs(4, || find_vendor_candidates(&db));
        prop_assert_eq!(&serial, &legacy, "blocked sweep diverged from legacy");
        prop_assert_eq!(&serial, &wide, "blocked sweep diverged across jobs");
    }

    #[test]
    fn blocked_product_sweep_equals_legacy_pair_set(db in ArbSmallDb) {
        let mapping = NameMapping::default();
        let legacy = find_product_candidates_legacy(&db, &mapping);
        let serial = minipar::with_jobs(1, || find_product_candidates(&db, &mapping));
        let wide = minipar::with_jobs(4, || find_product_candidates(&db, &mapping));
        prop_assert_eq!(&serial, &legacy, "blocked sweep diverged from legacy");
        prop_assert_eq!(&serial, &wide, "blocked sweep diverged across jobs");
    }
}

#[test]
fn serve_index_build_is_bit_identical_across_job_counts() {
    // ServeIndex construction fans per-shard sorting and posting-list
    // grouping over minipar; the full structural digest (shard tables,
    // vendor/product/CWE/severity postings, date order) must agree exactly
    // between the inline path and a wide pool.
    use nvd_serve::ServeIndex;
    let corpus = generate(&SynthConfig::with_scale(0.01, 4242));
    let digest_at =
        |jobs: usize| minipar::with_jobs(jobs, || ServeIndex::build(&corpus.database).digest());
    assert_eq!(
        digest_at(1),
        digest_at(4),
        "serve index digest diverged across jobs"
    );
}

#[test]
fn serve_answers_are_invariant_under_shard_count() {
    // Shard routing is a pure function of the CVE id, so answers — checked
    // via the order-sensitive workload checksum over mixed traffic — must
    // be bit-identical at any shard count and identical to the frozen
    // linear-scan replica.
    use nvd_serve::{generate_workload, run_workload, LinearScan, ServeIndex, WorkloadProfile};
    let corpus = generate(&SynthConfig::with_scale(0.01, 4242));
    let workload = generate_workload(&corpus.database, &WorkloadProfile::mixed(600), 0xd15c);
    let oracle = run_workload(&LinearScan::new(&corpus.database), &workload);
    for shards in [1, 3, 16, 64] {
        let index = ServeIndex::with_shards(&corpus.database, shards);
        let summary = run_workload(&index, &workload);
        assert_eq!(
            summary, oracle,
            "serve answers diverged from the linear scan at {shards} shards"
        );
    }
}

#[test]
fn serve_workload_generator_is_seed_stable() {
    // The synthetic query generator is part of the bench contract: equal
    // seeds must reproduce the exact query sequence (at any job count —
    // generation is serial by construction), and different seeds must
    // genuinely differ.
    use nvd_serve::{generate_workload, WorkloadProfile};
    let corpus = generate(&SynthConfig::with_scale(0.01, 4242));
    let profile = WorkloadProfile::mixed(400);
    let a = generate_workload(&corpus.database, &profile, 0xabcd);
    let b = generate_workload(&corpus.database, &profile, 0xabcd);
    let wide = minipar::with_jobs(4, || generate_workload(&corpus.database, &profile, 0xabcd));
    assert_eq!(a, b, "equal seeds must reproduce the workload");
    assert_eq!(a, wide, "workload generation must ignore the job count");
    let c = generate_workload(&corpus.database, &profile, 0xabce);
    assert_ne!(a, c, "seeds must matter to the workload");
}

#[test]
fn incremental_ingestion_is_bit_identical_across_job_counts() {
    // Delta replay through one CleanState must agree exactly between the
    // inline path and a wide pool — at every delta, on both the cleaned
    // corpus and the full report (Debug formatting covers every field,
    // floats included).
    use nvd_clean::{CleanOptions, CleanState};
    use nvd_synth::delta::generate_delta_stream;
    let run = |jobs: usize| {
        minipar::with_jobs(jobs, || {
            let stream = generate_delta_stream(&SynthConfig::with_scale(0.004, 99), 3);
            let oracle = OracleVerifier::new(stream.corpus.truth.vendor_alias_map());
            let mut state = CleanState::new(CleanOptions {
                run_backport: false,
                ..CleanOptions::default()
            });
            let base: Vec<_> = stream.base.iter().cloned().collect();
            let mut steps: Vec<Vec<CveEntry>> = vec![base];
            steps.extend(stream.feeds.iter().map(|f| f.entries()));
            let mut out = Vec::new();
            for delta in &steps {
                let step = state.apply_delta(delta, &stream.corpus.archive, &oracle);
                out.push((
                    step.database.iter().cloned().collect::<Vec<_>>(),
                    format!("{:?}", step.report),
                    step.ledger,
                ));
            }
            out
        })
    };
    assert_eq!(run(1), run(4), "delta replay diverged across job counts");
}

#[test]
fn warm_serve_updates_match_full_rebuilds_at_any_shard_count() {
    // Absorbing a delta stream through ServeIndexState::apply_delta must
    // leave the index digest-identical to a fresh build of each corpus
    // prefix, at every shard count — and the warm update path itself must
    // not care about the job count.
    use nvd_serve::ServeIndex;
    use nvd_synth::delta::generate_delta_stream;
    let stream = generate_delta_stream(&SynthConfig::with_scale(0.004, 99), 3);
    let warm_digests = |jobs: usize, shards: usize| {
        minipar::with_jobs(jobs, || {
            let mut db = stream.base.clone();
            let mut state = ServeIndex::with_shards(&db, shards).into_state();
            let mut out = vec![state.digest()];
            for feed in &stream.feeds {
                let entries = feed.entries();
                let touched: Vec<CveId> = entries.iter().map(|e| e.id).collect();
                for entry in entries {
                    db.push(entry);
                }
                state.apply_delta(&db, &touched);
                out.push(state.digest());
            }
            out
        })
    };
    assert_eq!(
        warm_digests(1, 16),
        warm_digests(4, 16),
        "warm updates diverged across job counts"
    );
    for shards in [1usize, 3, 16, 64] {
        let mut db = stream.base.clone();
        let mut fresh = vec![ServeIndex::with_shards(&db, shards).digest()];
        for feed in &stream.feeds {
            for entry in feed.entries() {
                db.push(entry);
            }
            fresh.push(ServeIndex::with_shards(&db, shards).digest());
        }
        assert_eq!(
            warm_digests(1, shards),
            fresh,
            "warm updates diverged from rebuilds at {shards} shards"
        );
    }
}

#[test]
fn served_quality_answers_are_shard_invariant_at_every_delta() {
    // The quality read path rides the same contract as every other query:
    // at every delta, a warm-refreshed quality attachment must answer
    // lookups and histograms identically to the linear-scan replica over
    // the same cleaned database and ledger, at any shard count.
    use nvd_clean::{CleanOptions, CleanState};
    use nvd_serve::{LinearScan, Query, QueryEngine, ScoreAxis, ServeIndex};
    use nvd_synth::delta::generate_delta_stream;
    let stream = generate_delta_stream(&SynthConfig::with_scale(0.004, 99), 3);
    let oracle = OracleVerifier::new(stream.corpus.truth.vendor_alias_map());
    let mut state = CleanState::new(CleanOptions {
        run_backport: false,
        ..CleanOptions::default()
    });
    let base: Vec<_> = stream.base.iter().cloned().collect();
    let mut steps: Vec<Vec<CveEntry>> = vec![base];
    steps.extend(stream.feeds.iter().map(|f| f.entries()));
    for (i, delta) in steps.iter().enumerate() {
        let out = state.apply_delta(delta, &stream.corpus.archive, &oracle);
        let scan = LinearScan::with_ledger(&out.database, &out.ledger);
        let mut queries: Vec<Query> = out
            .database
            .iter()
            .map(|e| Query::QualityLookup(e.id))
            .collect();
        queries.extend(
            [
                ScoreAxis::Completeness,
                ScoreAxis::Consistency,
                ScoreAxis::Accuracy,
                ScoreAxis::Overall,
            ]
            .map(|axis| Query::QualityHistogram { axis }),
        );
        for shards in [1usize, 4, 16] {
            let index = ServeIndex::with_shards(&out.database, shards).with_quality(&out.ledger);
            for query in &queries {
                assert_eq!(
                    index.execute(query),
                    scan.execute(query),
                    "quality answer diverged at delta {i}, {shards} shards"
                );
            }
        }
    }
}

/// Random delta sequences over [`ArbSmallDb`]-style entries: every entry
/// is assigned an arrival step, and some are redelivered later with a
/// rewritten CPE — covering inserts, modifications, same-id repeats
/// within one delta, and empty deltas.
#[derive(Debug)]
struct ArbDeltaSteps;

impl Strategy for ArbDeltaSteps {
    type Value = Vec<Vec<CveEntry>>;

    fn new_value(&self, runner: &mut proptest::test_runner::TestRunner) -> Self::Value {
        let n = (4usize..16).new_value(runner);
        let step_count = (2usize..5).new_value(runner);
        let mut steps: Vec<Vec<CveEntry>> = vec![Vec::new(); step_count];
        let mut all: Vec<CveEntry> = Vec::new();
        for i in 0..n {
            let vendor = "[ab][abc_!]{0,6}".new_value(runner);
            let product = "[ab][ab0-1_]{0,4}".new_value(runner);
            let mut e = CveEntry::new(
                CveId::new(2019, (i + 1) as u32),
                "2019-01-01".parse().unwrap(),
            );
            e.affected
                .push(CpeName::application(vendor.as_str(), product.as_str()));
            steps[(0..step_count).new_value(runner)].push(e.clone());
            all.push(e);
        }
        for e in &all {
            if (0usize..3).new_value(runner) == 0 {
                let vendor = "[ab][abc_!]{0,6}".new_value(runner);
                let product = "[ab][ab0-1_]{0,4}".new_value(runner);
                let mut m = e.clone();
                m.affected = vec![CpeName::application(vendor.as_str(), product.as_str())];
                steps[(0..step_count).new_value(runner)].push(m);
            }
        }
        steps
    }
}

proptest! {
    #[test]
    fn incremental_cleaning_equals_batch_on_random_delta_sequences(steps in ArbDeltaSteps) {
        // The tentpole contract, property-sampled: replaying any delta
        // sequence through one CleanState equals batch-cleaning the
        // accumulated corpus from scratch — after every delta.
        use nvd_clean::{CleanOptions, CleanState};
        let archive = webarchive::WebArchive::new();
        let oracle = OracleVerifier::new(std::collections::BTreeMap::new());
        let options = CleanOptions {
            run_backport: false,
            ..CleanOptions::default()
        };
        let mut state = CleanState::new(options.clone());
        let cleaner = Cleaner::new(options);
        for (i, delta) in steps.iter().enumerate() {
            let inc = state.apply_delta(delta, &archive, &oracle);
            let batch = cleaner.clean(state.database(), &archive, &oracle);
            prop_assert_eq!(
                inc.database.as_slice(),
                batch.database.as_slice(),
                "cleaned database diverged at delta {}",
                i
            );
            prop_assert_eq!(
                format!("{:?}", inc.report),
                format!("{:?}", batch.report),
                "report diverged at delta {}",
                i
            );
            prop_assert_eq!(
                &inc.ledger,
                &batch.ledger,
                "quality ledger diverged at delta {}",
                i
            );
        }
    }
}

#[test]
fn different_seed_different_corpus() {
    let a = generate(&SynthConfig::with_scale(0.005, 1));
    let b = generate(&SynthConfig::with_scale(0.005, 2));
    let ea: Vec<_> = a.database.iter().collect();
    let eb: Vec<_> = b.database.iter().collect();
    assert_ne!(ea, eb, "seeds must matter");
}

#[test]
fn scale_controls_size_monotonically() {
    let small = generate(&SynthConfig::with_scale(0.005, 3));
    let large = generate(&SynthConfig::with_scale(0.02, 3));
    assert!(large.database.len() > small.database.len());
    assert!(large.archive.len() > small.archive.len());
    assert!(
        large.database.vendor_set().len() > small.database.vendor_set().len(),
        "vendor universe must scale"
    );
}
