//! Determinism: equal seeds reproduce everything bit-for-bit; different
//! seeds genuinely differ.

use nvd_clean::cleaner::Cleaner;
use nvd_clean::names::OracleVerifier;
use nvd_synth::{generate, SynthConfig};

#[test]
fn same_seed_same_corpus_and_cleaning() {
    let run = || {
        let corpus = generate(&SynthConfig::with_scale(0.01, 777));
        let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
        let (db, report) = Cleaner::default().clean(&corpus.database, &corpus.archive, &oracle);
        let sev = report.severity.as_ref().unwrap();
        (
            db.iter().cloned().collect::<Vec<_>>(),
            report.disclosure.clone(),
            sev.predictions.clone(),
            sev.chosen,
            report.cwe.corrections.clone(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "cleaned entries differ");
    assert_eq!(a.1, b.1, "disclosure estimates differ");
    assert_eq!(a.2, b.2, "severity predictions differ");
    assert_eq!(a.3, b.3, "chosen model differs");
    assert_eq!(a.4, b.4, "CWE corrections differ");
}

#[test]
fn pipeline_is_bit_identical_across_job_counts() {
    // End-to-end version of the minipar determinism contract: corpus
    // generation AND the full cleaning pipeline must agree exactly between
    // the inline path and a wide pool (the CI perf-smoke job re-checks the
    // same property across processes via the NVD_JOBS env var).
    let run = |jobs: usize| {
        minipar::with_jobs(jobs, || {
            let corpus = generate(&SynthConfig::with_scale(0.01, 777));
            let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
            let (db, report) = Cleaner::default().clean(&corpus.database, &corpus.archive, &oracle);
            (
                corpus.digest(),
                db.iter().cloned().collect::<Vec<_>>(),
                report.disclosure.clone(),
                report.severity.as_ref().unwrap().predictions.clone(),
                report.names.vendor_confirmed,
            )
        })
    };
    let serial = run(1);
    let wide = run(6);
    assert_eq!(serial.0, wide.0, "corpus digest diverged");
    assert_eq!(serial.1, wide.1, "cleaned entries diverged");
    assert_eq!(serial.2, wide.2, "disclosure estimates diverged");
    assert_eq!(serial.3, wide.3, "severity predictions diverged");
    assert_eq!(serial.4, wide.4, "name verification diverged");
}

#[test]
fn different_seed_different_corpus() {
    let a = generate(&SynthConfig::with_scale(0.005, 1));
    let b = generate(&SynthConfig::with_scale(0.005, 2));
    let ea: Vec<_> = a.database.iter().collect();
    let eb: Vec<_> = b.database.iter().collect();
    assert_ne!(ea, eb, "seeds must matter");
}

#[test]
fn scale_controls_size_monotonically() {
    let small = generate(&SynthConfig::with_scale(0.005, 3));
    let large = generate(&SynthConfig::with_scale(0.02, 3));
    assert!(large.database.len() > small.database.len());
    assert!(large.archive.len() > small.archive.len());
    assert!(
        large.database.vendor_set().len() > small.database.vendor_set().len(),
        "vendor universe must scale"
    );
}
