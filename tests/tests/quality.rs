//! Detector precision/recall against the generator's §3 degradation
//! ground truth.
//!
//! The synthetic corpus injects every quality degradation deliberately
//! and `nvd_synth::quality_truth` flattens the secrets into per-CVE
//! [`DegradationKind`] labels. The cleaning pipeline's quality detectors
//! re-discover those degradations from the observable data alone; this
//! harness scores each detector kind-for-kind and pins precision/recall
//! floors, so a refactor that blunts a detector (or makes one trigger-
//! happy) fails loudly instead of silently degrading the served ledger.
//!
//! The floors are pinned a few points under the measured values at this
//! `(scale, seed)`, far above chance: the generation and the pipeline
//! are both deterministic, so any drop below a floor is a real
//! behavioural change, not sampling noise.

use std::collections::BTreeSet;

use nvd_clean::cleaner::{CleanOptions, Cleaner};
use nvd_clean::names::OracleVerifier;
use nvd_clean::quality::{IssueKind, QualityLedger};
use nvd_clean::severity::{BackportOptions, TrainProfile};
use nvd_model::prelude::CveId;
use nvd_synth::quality_truth::{expected_issues, DegradationKind};
use nvd_synth::{generate, SynthConfig, SynthCorpus};

const SCALE: f64 = 0.02;
const SEED: u64 = 5;

/// `(degradation, detector, precision floor, recall floor)`.
///
/// Structural kinds (CWE, CVSS v3) are exact reads of the entry, so
/// their detectors must stay perfect. Evidence-driven kinds tolerate
/// bounded slack: disclosure detection over-fires on entries whose
/// references yield no extractable dates (precision < 1), and the lag
/// estimator cannot antedate every entry whose evidence never surfaced
/// (recall < 1).
const FLOORS: [(DegradationKind, IssueKind, f64, f64); 7] = [
    (
        DegradationKind::MissingDisclosure,
        IssueKind::MissingDisclosure,
        0.45,
        1.0,
    ),
    (
        DegradationKind::PublicationLag,
        IssueKind::PublicationLag,
        0.95,
        0.80,
    ),
    (
        DegradationKind::VendorAlias,
        IssueKind::VendorAlias,
        0.80,
        0.70,
    ),
    (
        DegradationKind::ProductAlias,
        IssueKind::ProductAlias,
        0.70,
        0.50,
    ),
    (
        DegradationKind::DegenerateCwe,
        IssueKind::DegenerateCwe,
        1.0,
        1.0,
    ),
    (DegradationKind::MissingCwe, IssueKind::MissingCwe, 1.0, 1.0),
    (
        DegradationKind::MissingCvssV3,
        IssueKind::MissingCvssV3,
        1.0,
        1.0,
    ),
];

fn cleaned_corpus() -> (SynthCorpus, QualityLedger) {
    let corpus = generate(&SynthConfig::with_scale(SCALE, SEED));
    let cleaner = Cleaner::new(CleanOptions {
        backport: BackportOptions {
            profile: TrainProfile::Fast,
            seed: SEED,
            ..BackportOptions::default()
        },
        ..CleanOptions::default()
    });
    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let out = cleaner.clean(&corpus.database, &corpus.archive, &oracle);
    (corpus, out.ledger)
}

/// Ids the ledger flags with `kind`, regardless of resolution — the
/// question scored here is *detection*, auto-fix or review alike.
fn detected_ids(ledger: &QualityLedger, kind: IssueKind) -> BTreeSet<CveId> {
    ledger
        .iter()
        .filter(|(_, issues)| issues.iter().any(|i| i.kind == kind))
        .map(|(id, _)| *id)
        .collect()
}

#[test]
fn detectors_meet_pinned_precision_and_recall() {
    let (corpus, ledger) = cleaned_corpus();
    let expected = expected_issues(&corpus);

    for (degradation, issue_kind, precision_floor, recall_floor) in FLOORS {
        let truth: BTreeSet<CveId> = expected
            .iter()
            .filter(|(_, kinds)| kinds.contains(&degradation))
            .map(|(id, _)| *id)
            .collect();
        let detected = detected_ids(&ledger, issue_kind);
        assert!(
            !truth.is_empty(),
            "{}: generator injected no instances at scale {SCALE}",
            degradation.name()
        );
        assert!(
            !detected.is_empty(),
            "{}: detector found nothing",
            issue_kind.name()
        );

        let tp = detected.intersection(&truth).count() as f64;
        let precision = tp / detected.len() as f64;
        let recall = tp / truth.len() as f64;
        assert!(
            precision >= precision_floor,
            "{}: precision {precision:.3} under floor {precision_floor} \
             ({} detected, {} true)",
            issue_kind.name(),
            detected.len(),
            truth.len()
        );
        assert!(
            recall >= recall_floor,
            "{}: recall {recall:.3} under floor {recall_floor} \
             ({} detected, {} true)",
            issue_kind.name(),
            detected.len(),
            truth.len()
        );
        println!(
            "{:<20} precision {precision:.3}  recall {recall:.3}  (n={})",
            issue_kind.name(),
            truth.len()
        );
    }
}

#[test]
fn degradation_and_issue_kind_names_stay_aligned() {
    // The harness matches generator labels to detector kinds pair-by-pair;
    // the shared kebab-case names are the documentation of that mapping.
    for (degradation, issue_kind, _, _) in FLOORS {
        assert_eq!(degradation.name(), issue_kind.name());
    }
}
