//! Property-based invariants spanning the workspace crates.

use nvd_clean::extract_cwe_ids;
use nvd_model::prelude::*;
use proptest::prelude::*;
use textkit::distance::{levenshtein, levenshtein_at_most};
use webarchive::dates::{format_date, parse_date, DateStyle};

fn arb_date() -> impl Strategy<Value = Date> {
    (1988i32..=2030, 1u32..=12, 1u32..=28)
        .prop_map(|(y, m, d)| Date::from_ymd(y, m, d).expect("valid"))
}

fn arb_style() -> impl Strategy<Value = DateStyle> {
    prop_oneof![
        Just(DateStyle::Iso),
        Just(DateStyle::UsLong),
        Just(DateStyle::UsSlash),
        Just(DateStyle::Rfc2822),
        Just(DateStyle::BugzillaTs),
        Just(DateStyle::JapaneseYmd),
    ]
}

proptest! {
    #[test]
    fn date_format_parse_round_trip(date in arb_date(), style in arb_style()) {
        let rendered = format_date(date, style);
        prop_assert_eq!(parse_date(&rendered, style), Some(date));
    }

    #[test]
    fn date_day_number_round_trip(date in arb_date()) {
        prop_assert_eq!(Date::from_day_number(date.day_number()), date);
    }

    #[test]
    fn date_ordering_matches_day_numbers(a in arb_date(), b in arb_date()) {
        prop_assert_eq!(a.cmp(&b), a.day_number().cmp(&b.day_number()));
    }

    #[test]
    fn plus_days_is_additive(date in arb_date(), n in -3000i32..3000, m in -3000i32..3000) {
        prop_assert_eq!(date.plus_days(n).plus_days(m), date.plus_days(n + m));
    }

    #[test]
    fn levenshtein_triangle_inequality(
        a in "[a-z_]{0,12}",
        b in "[a-z_]{0,12}",
        c in "[a-z_]{0,12}",
    ) {
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc, "d(a,c)={ac} > d(a,b)+d(b,c)={}", ab + bc);
    }

    #[test]
    fn levenshtein_identity_and_symmetry(a in "[a-z_]{0,12}", b in "[a-z_]{0,12}") {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn banded_levenshtein_agrees_with_full_distance(
        a in "[a-c0-1_!é]{0,12}",
        b in "[a-c0-1_!é]{0,12}",
        k in 0usize..5,
    ) {
        // The banded early-exit variant must be exact within its budget
        // and must refuse (not truncate) anything beyond it — including on
        // multi-byte text, where the band runs over chars, not bytes.
        let full = levenshtein(&a, &b);
        prop_assert_eq!(
            levenshtein_at_most(&a, &b, k),
            (full <= k).then_some(full),
            "full distance {} at k={}", full, k
        );
    }

    #[test]
    fn cve_id_parse_display_round_trip(year in 1999u16..=2030, seq in 1u32..=9_999_999) {
        let id = CveId::new(year, seq);
        let parsed: CveId = id.to_string().parse().expect("round trip");
        prop_assert_eq!(parsed, id);
    }

    #[test]
    fn extract_cwe_never_panics_and_ids_match_source(text in ".{0,200}") {
        // Arbitrary text must not break the scanner, and every extracted id
        // must literally appear in the input.
        for id in extract_cwe_ids(&text) {
            prop_assert!(text.contains(&id.to_string()));
        }
    }

    #[test]
    fn extract_cwe_finds_planted_id(num in 1u32..10_000, prefix in "[a-z ]{0,20}") {
        let text = format!("{prefix}CWE-{num}: something");
        let found = extract_cwe_ids(&text);
        prop_assert!(found.iter().any(|i| i.number() == num), "{text}: {found:?}");
    }

    #[test]
    fn v2_vector_parse_round_trip(idx in 0usize..729) {
        let v = cvss::all_v2_vectors()[idx];
        let parsed: CvssV2Vector = v.to_string().parse().expect("round trip");
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn v3_scores_stay_in_range(idx in 0usize..2592) {
        let v = cvss::all_v3_vectors()[idx];
        let (score, _) = cvss::score_v3(&v);
        prop_assert!((0.0..=10.0).contains(&score));
        let parsed: CvssV3Vector = v.to_string().parse().expect("round trip");
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn severity_banding_is_monotone(a in 0.0f64..=10.0, b in 0.0f64..=10.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Severity::from_v3_score(lo) <= Severity::from_v3_score(hi));
        prop_assert!(Severity::from_v2_score(lo) <= Severity::from_v2_score(hi));
    }

    #[test]
    fn vendor_name_normalisation_is_idempotent(raw in "[A-Za-z0-9 _!.-]{1,24}") {
        let once = VendorName::new(&raw);
        let twice = VendorName::new(once.as_str());
        prop_assert_eq!(once, twice);
    }
}

#[test]
fn generator_calibration_is_stable_across_seeds() {
    // Not a proptest (generation is expensive): three seeds, the zero-lag
    // calibration band must hold for all of them.
    for seed in [5, 6, 7] {
        let corpus = nvd_synth::generate(&nvd_synth::SynthConfig::with_scale(0.01, seed));
        let zero = corpus
            .database
            .iter()
            .filter(|e| e.published == corpus.truth.disclosure[&e.id])
            .count() as f64
            / corpus.database.len() as f64;
        assert!((0.25..0.50).contains(&zero), "seed {seed}: zero-lag {zero}");
    }
}
