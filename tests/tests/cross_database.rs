//! Cross-database application of the NVD-derived vendor mapping (§4.2,
//! Table 3): the mapping built on NVD must transfer to SecurityFocus and
//! SecurityTracker.

use nvd_clean::cleaner::{CleanOptions, Cleaner};
use nvd_clean::names::OracleVerifier;
use nvd_synth::{generate, SynthConfig};

#[test]
fn mapping_transfers_to_side_databases() {
    let corpus = generate(&SynthConfig::with_scale(0.06, 201));
    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let cleaner = Cleaner::new(CleanOptions {
        run_backport: false,
        ..CleanOptions::default()
    });
    let report = cleaner
        .clean(&corpus.database, &corpus.archive, &oracle)
        .report;
    let mapping = &report.names.mapping;

    let sf = mapping.count_mappable(corpus.security_focus.vendors.iter());
    let st = mapping.count_mappable(corpus.security_tracker.vendors.iter());
    assert!(sf > 0, "SecurityFocus must contain mappable aliases");

    // Paper: SF carries far more inconsistent names than ST (2,094 vs 110).
    // At reduced scale the *count* ordering is the statistically stable
    // property; the rate gap (8% vs 3%) needs the full-size corpora.
    assert!(st <= sf, "SF count {sf} must be ≥ ST count {st}");
    let sf_rate = sf as f64 / corpus.security_focus.len() as f64;
    assert!(sf_rate < 0.25, "SF rate {sf_rate} implausibly high");
}

#[test]
fn side_database_sizes_scale_like_paper() {
    let corpus = generate(&SynthConfig::with_scale(0.03, 202));
    // Paper: SF 24,760 vs NVD 18,991 vs ST 4,151.
    assert!(corpus.security_focus.len() > corpus.database.vendor_set().len());
    assert!(corpus.security_tracker.len() < corpus.database.vendor_set().len());
}
