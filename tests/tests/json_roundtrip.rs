//! NVD JSON feed round-trips over generated corpora.

use nvd_model::feed::{from_feed, to_feed};
use nvd_synth::{generate, SynthConfig};

#[test]
fn feed_round_trip_preserves_database() {
    let corpus = generate(&SynthConfig::with_scale(0.005, 11));
    let doc = to_feed(&corpus.database, "2018-05-21T00:00Z");
    let back = from_feed(&doc).expect("feed parses back");
    assert_eq!(back.len(), corpus.database.len());
    for (a, b) in corpus.database.iter().zip(back.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.published, b.published);
        assert_eq!(a.cwes, b.cwes, "{}", a.id);
        assert_eq!(a.affected, b.affected, "{}", a.id);
        assert_eq!(a.references, b.references, "{}", a.id);
        match (&a.cvss_v2, &b.cvss_v2) {
            (Some(x), Some(y)) => {
                assert_eq!(x.vector, y.vector);
                assert!((x.base_score - y.base_score).abs() < 1e-9);
            }
            (None, None) => {}
            _ => panic!("{}: v2 presence mismatch", a.id),
        }
    }
}

#[test]
fn feed_round_trip_is_exact_over_a_synth_corpus() {
    // Full-equality version of the spot checks above: exporting a corpus
    // and importing it back — directly and through JSON text — must
    // reproduce every entry bit for bit. The incremental ingestion path
    // leans on this: delta feeds travel as `FeedDocument`s.
    let corpus = generate(&SynthConfig::with_scale(0.01, 11));
    let doc = to_feed(&corpus.database, "2018-05-21T00:00Z");
    let back = from_feed(&doc).expect("feed parses back");
    assert_eq!(back.as_slice(), corpus.database.as_slice());
    let json = serde_json::to_string(&doc).expect("serialise");
    let doc2: nvd_model::feed::FeedDocument = serde_json::from_str(&json).expect("deserialise");
    let back2 = from_feed(&doc2).expect("convert");
    assert_eq!(back2.as_slice(), corpus.database.as_slice());
}

#[test]
fn feed_serialises_to_json_and_back() {
    let corpus = generate(&SynthConfig::with_scale(0.003, 12));
    let doc = to_feed(&corpus.database, "2018-05-21T00:00Z");
    let json = serde_json::to_string(&doc).expect("serialise");
    assert!(json.contains("CVE_Items") || json.contains("cve_items") || json.len() > 100);
    let doc2: nvd_model::feed::FeedDocument = serde_json::from_str(&json).expect("deserialise");
    let back = from_feed(&doc2).expect("convert");
    assert_eq!(back.len(), corpus.database.len());
}

#[test]
fn cleaned_database_still_serialises() {
    use nvd_clean::cleaner::{CleanOptions, Cleaner};
    use nvd_clean::names::OracleVerifier;
    let corpus = generate(&SynthConfig::with_scale(0.003, 13));
    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let cleaner = Cleaner::new(CleanOptions {
        run_backport: false,
        ..CleanOptions::default()
    });
    let cleaned = cleaner
        .clean(&corpus.database, &corpus.archive, &oracle)
        .database;
    let doc = to_feed(&cleaned, "2018-05-21T00:00Z");
    let back = from_feed(&doc).expect("round trip");
    assert_eq!(back.len(), cleaned.len());
}
