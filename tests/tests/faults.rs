//! Fault-path determinism: crawls under seeded fault plans, transactional
//! ingestion of corrupt delta feeds, and rollback-safe serve updates must
//! all be bit-identical at any `NVD_JOBS` and any shard count — and
//! recovery must leave no trace: replay-after-rollback equals a run that
//! never failed.
//!
//! The suite is parameterised by the `NVD_FAULT_SEED` env var (the CI
//! fault-smoke job runs it under two seeds) so the fault surface is not
//! pinned to one lucky plan.

use std::collections::BTreeMap;

use nvd_clean::{CleanOptions, CleanState, IngestError, OracleVerifier};
use nvd_model::feed::{parse_feed_json, to_feed, FeedError};
use nvd_model::prelude::{CpeName, CveEntry, CveId, Database};
use nvd_serve::{ServeIndex, UpdateError};
use nvd_synth::faults::{corrupt_delta_stream, generate_fault_plan};
use nvd_synth::{generate, SynthConfig};
use proptest::prelude::*;
use webarchive::{CrawlEngine, CrawlResult, CrawlerSet, RetryPolicy, WebArchive};

/// The fault seed under test: `NVD_FAULT_SEED` if set, else a fixed
/// default so local runs are reproducible without any environment.
fn fault_seed() -> u64 {
    match std::env::var("NVD_FAULT_SEED") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("NVD_FAULT_SEED must be an integer, got {v:?}")),
        Err(_) => 0xfa17,
    }
}

fn empty_options() -> CleanOptions {
    CleanOptions {
        run_backport: false,
        ..CleanOptions::default()
    }
}

#[test]
fn faulty_crawl_is_bit_identical_across_job_counts() {
    // The retrying engine under a generated mixed fault plan: outcomes —
    // including timeouts and circuit-breaker abandonments — are a pure
    // function of (urls, model, plan), so the inline path and a wide pool
    // must agree exactly, as must the id-indexed crawl_results view.
    let corpus = generate(&SynthConfig::with_scale(0.004, 0xc4a1));
    let plan = generate_fault_plan(fault_seed());
    let crawlers = CrawlerSet::builtin();
    let mut urls: Vec<&str> = corpus.archive.urls().collect();
    urls.sort_unstable();
    let run = |jobs: usize| {
        minipar::with_jobs(jobs, || {
            let engine = CrawlEngine::new(&corpus.archive, &crawlers)
                .with_faults(&plan, RetryPolicy::default());
            (engine.crawl(&urls), engine.crawl_results(&urls))
        })
    };
    let serial = run(1);
    let wide = run(4);
    assert_eq!(
        serial.0, wide.0,
        "faulty crawl outcomes diverged across jobs"
    );
    assert_eq!(
        serial.1, wide.1,
        "faulty crawl results diverged across jobs"
    );
    for outcome in &serial.0 {
        assert_eq!(
            serial.1[outcome.id], outcome.result,
            "crawl_results must scatter crawl outcomes by id"
        );
    }
    // A mixed plan over a real corpus must actually exercise failure.
    assert!(
        serial
            .1
            .iter()
            .any(|r| matches!(r, CrawlResult::TimedOut | CrawlResult::CircuitOpen)),
        "fault plan produced no failed fetches — seed {}",
        fault_seed()
    );
}

#[test]
fn quarantine_ledger_matches_corruption_ground_truth() {
    // Ingesting a corrupt delta stream: poisoned feeds error and mutate
    // nothing; per-item corruption lands in the quarantine ledger exactly
    // as the generator's ground truth predicts; admitted ids all reach the
    // accumulated corpus. The whole run is bit-identical across job counts.
    let fs = corrupt_delta_stream(&SynthConfig::with_scale(0.004, 0x1e57), 4, fault_seed());
    let run = |jobs: usize| {
        minipar::with_jobs(jobs, || {
            let oracle = OracleVerifier::new(fs.stream.corpus.truth.vendor_alias_map());
            let archive = &fs.stream.corpus.archive;
            let mut state = CleanState::new(empty_options());
            let base: Vec<CveEntry> = fs.stream.base.iter().cloned().collect();
            state.apply_delta(&base, archive, &oracle);
            let mut log: Vec<String> = Vec::new();
            for cf in &fs.feeds {
                let label = cf.date.to_string();
                match state.ingest_json(&label, &cf.json, archive, &oracle) {
                    Err(IngestError::MalformedFeed { .. }) => {
                        assert!(cf.poisoned, "only poisoned feeds may fail to ingest");
                        log.push(format!("{label}: rejected"));
                    }
                    Ok(outcome) => {
                        assert!(!cf.poisoned, "poisoned feed {label} was ingested");
                        let mut raw_ids: Vec<String> = outcome
                            .quarantined
                            .iter()
                            .map(|r| r.raw_id.clone())
                            .collect();
                        raw_ids.sort_unstable();
                        raw_ids.dedup();
                        assert_eq!(
                            raw_ids, cf.quarantined_ids,
                            "quarantined ids diverged from ground truth in feed {label}"
                        );
                        for id in &cf.admitted_ids {
                            assert!(
                                state.database().get(id).is_some(),
                                "admitted id {id} missing from the corpus"
                            );
                        }
                        assert!(outcome.quarantined.iter().all(|r| r.feed == label));
                        log.push(format!(
                            "{label}: admitted {} quarantined {:?}",
                            outcome.admitted, outcome.quarantined
                        ));
                    }
                }
            }
            let entries: Vec<CveEntry> = state.database().iter().cloned().collect();
            (log, entries, format!("{:?}", state.quarantine()))
        })
    };
    let serial = run(1);
    let wide = run(4);
    assert_eq!(serial.0, wide.0, "ingestion log diverged across jobs");
    assert_eq!(serial.1, wide.1, "accumulated corpus diverged across jobs");
    assert_eq!(serial.2, wide.2, "quarantine ledger diverged across jobs");
    // The rotation guarantees ≥ 4 feeds cover every corruption kind, so
    // the run above exercised rejection, quarantine, and benign collapse.
    assert!(
        fs.feeds.iter().any(|f| f.poisoned),
        "stream carried no poisoned feed"
    );
    assert!(
        fs.feeds.iter().any(|f| !f.quarantined_ids.is_empty()),
        "stream carried no quarantinable items"
    );
}

#[test]
fn replay_after_rollback_equals_never_having_failed() {
    // The transactional contract end to end: a state that ingests each
    // feed's truncated payload (rolled back with an error), then the clean
    // payload, must be indistinguishable — corpus, report, ledger, and the
    // serve index built from it — from a state that only ever saw the
    // clean payloads.
    let fs = corrupt_delta_stream(&SynthConfig::with_scale(0.004, 0x0ff), 3, fault_seed());
    let oracle = OracleVerifier::new(fs.stream.corpus.truth.vendor_alias_map());
    let archive = &fs.stream.corpus.archive;
    let base: Vec<CveEntry> = fs.stream.base.iter().cloned().collect();

    let mut faulty = CleanState::new(empty_options());
    let mut clean = CleanState::new(empty_options());
    faulty.apply_delta(&base, archive, &oracle);
    clean.apply_delta(&base, archive, &oracle);

    for feed in &fs.stream.feeds {
        let label = feed.date.to_string();
        let good = serde_json::to_string(&feed.document).expect("feed serializes");
        let truncated = &good[..good.len() * 2 / 3];
        assert!(
            matches!(
                faulty.ingest_json(&label, truncated, archive, &oracle),
                Err(IngestError::MalformedFeed { .. })
            ),
            "truncated payload must be rejected"
        );
        let a = faulty
            .ingest_json(&label, &good, archive, &oracle)
            .expect("clean replay ingests");
        let b = clean
            .ingest_json(&label, &good, archive, &oracle)
            .expect("clean payload ingests");
        assert_eq!(
            a.outcome.database.as_slice(),
            b.outcome.database.as_slice(),
            "cleaned corpus diverged after rollback at {label}"
        );
        assert_eq!(
            format!("{:?}", a.outcome.report),
            format!("{:?}", b.outcome.report),
            "clean report diverged after rollback at {label}"
        );
        assert_eq!(
            a.outcome.ledger, b.outcome.ledger,
            "quality ledger diverged after rollback at {label}"
        );
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.quarantined, b.quarantined);
    }
    assert_eq!(
        faulty.quarantine(),
        clean.quarantine(),
        "rolled-back feeds left quarantine records behind"
    );
    let faulty_entries: Vec<CveEntry> = faulty.database().iter().cloned().collect();
    let clean_entries: Vec<CveEntry> = clean.database().iter().cloned().collect();
    assert_eq!(faulty_entries, clean_entries, "raw corpus diverged");
    assert_eq!(
        ServeIndex::build(faulty.database()).digest(),
        ServeIndex::build(clean.database()).digest(),
        "serve index diverged after rollback"
    );
}

#[test]
fn serve_rollback_leaves_digest_identical_at_any_shard_count() {
    // try_apply_delta's contract at every supported shard count: a
    // rejected update leaves the state digest-identical to a fresh build
    // of the pre-delta corpus, and the corrected replay equals a fresh
    // build of the post-delta corpus.
    let db0 = generate(&SynthConfig::with_scale(0.004, 0x5e2e)).database;
    let missing: CveId = "CVE-1999-9999999".parse().unwrap();
    let mut fresh_entry = db0.iter().next().unwrap().clone();
    fresh_entry.id = "CVE-2031-0001".parse().unwrap();
    for shards in [1usize, 3, 16, 64] {
        let mut state = ServeIndex::with_shards(&db0, shards).into_state();
        assert_eq!(
            state.try_apply_delta(&db0, &[missing]),
            Err(UpdateError::MissingEntry { id: missing })
        );
        assert_eq!(
            state.digest(),
            ServeIndex::with_shards(&db0, shards).digest(),
            "rejected update tore the state at {shards} shards"
        );
        let mut db = db0.clone();
        db.push(fresh_entry.clone());
        state
            .try_apply_delta(&db, &[fresh_entry.id])
            .expect("corrected delta applies");
        assert_eq!(
            state.digest(),
            ServeIndex::with_shards(&db, shards).digest(),
            "replayed update diverged from rebuild at {shards} shards"
        );
    }
}

#[test]
fn malformed_feeds_round_trip_through_parse_and_ingest() {
    // The three malformed shapes the issue names, end to end. A truncated
    // payload and a meta-less payload both fail to parse — and fail
    // ingestion without mutating anything; out-of-order published dates
    // are not corruption: they round-trip through the feed format and
    // ingest exactly like apply_delta.
    let mut db = Database::new();
    for (i, date) in ["2020-06-01", "2019-03-04", "2021-12-31"]
        .iter()
        .enumerate()
    {
        let mut e = CveEntry::new(CveId::new(2020, (i + 1) as u32), date.parse().unwrap());
        e.affected.push(CpeName::application("venddor", "prodduct"));
        db.push(e);
    }
    let good = serde_json::to_string(&to_feed(&db, "2022-01-01T00:00Z")).unwrap();

    // Truncated JSON: parse error, typed Json variant.
    let truncated = &good[..good.len() / 2];
    assert!(matches!(
        parse_feed_json(truncated),
        Err(FeedError::Json { .. })
    ));
    // Missing CVE_data_meta: still a parse error, not a panic.
    let meta_less = good.replace("CVE_data_meta", "CVE_data_m3ta");
    assert!(matches!(
        parse_feed_json(&meta_less),
        Err(FeedError::Json { .. })
    ));

    let archive = WebArchive::new();
    let oracle = OracleVerifier::new(BTreeMap::new());
    let mut state = CleanState::new(empty_options());
    for bad in [truncated, meta_less.as_str()] {
        assert!(matches!(
            state.ingest_json("bad", bad, &archive, &oracle),
            Err(IngestError::MalformedFeed { .. })
        ));
        assert_eq!(state.database().len(), 0, "failed ingest mutated the state");
        assert!(state.quarantine().is_empty());
    }

    // Out-of-order dates: the feed round-trips losslessly and ingesting
    // it equals applying the entries directly.
    let doc = parse_feed_json(&good).expect("well-formed feed parses");
    assert_eq!(
        nvd_model::feed::from_feed(&doc)
            .expect("round-trip")
            .as_slice(),
        db.as_slice(),
        "feed round-trip altered the entries"
    );
    let outcome = state
        .ingest_json("ooo-dates", &good, &archive, &oracle)
        .expect("out-of-order dates are admissible");
    assert_eq!(outcome.admitted, db.len());
    assert!(outcome.quarantined.is_empty());
    let mut reference = CleanState::new(empty_options());
    let entries: Vec<CveEntry> = db.iter().cloned().collect();
    let reference_out = reference.apply_delta(&entries, &archive, &oracle);
    assert_eq!(
        outcome.outcome.database.as_slice(),
        reference_out.database.as_slice()
    );
    assert_eq!(
        format!("{:?}", outcome.outcome.report),
        format!("{:?}", reference_out.report)
    );
    assert_eq!(outcome.outcome.ledger, reference_out.ledger);
}

/// Random well-formed delta feeds over a tiny CPE alphabet, as ordered
/// steps: each step is a small distinct-id entry set serialized through
/// the real feed format. (Hand-rolled [`Strategy`] — the vendored
/// proptest shim has no `collection::vec`.)
#[derive(Debug)]
struct ArbFeedSteps;

impl Strategy for ArbFeedSteps {
    type Value = Vec<String>;

    fn new_value(&self, runner: &mut proptest::test_runner::TestRunner) -> Self::Value {
        let step_count = (2usize..5).new_value(runner);
        let mut next_id = 1u32;
        (0..step_count)
            .map(|_| {
                let n = (1usize..6).new_value(runner);
                let mut db = Database::new();
                for _ in 0..n {
                    let vendor = "[ab][abc_!]{0,6}".new_value(runner);
                    let product = "[ab][ab0-1_]{0,4}".new_value(runner);
                    let mut e =
                        CveEntry::new(CveId::new(2019, next_id), "2019-01-01".parse().unwrap());
                    next_id += 1;
                    e.affected
                        .push(CpeName::application(vendor.as_str(), product.as_str()));
                    db.push(e);
                }
                serde_json::to_string(&to_feed(&db, "2019-02-02T00:00Z")).unwrap()
            })
            .collect()
    }
}

proptest! {
    #[test]
    fn inject_rollback_replay_equals_clean_run(feeds in ArbFeedSteps) {
        // Property-sampled rollback contract: before every feed, one state
        // suffers a truncated-payload ingestion (which must error), then
        // both ingest the clean payload — corpus, report and ledger must
        // agree at every step.
        let archive = WebArchive::new();
        let oracle = OracleVerifier::new(BTreeMap::new());
        let mut faulty = CleanState::new(empty_options());
        let mut clean = CleanState::new(empty_options());
        for (i, good) in feeds.iter().enumerate() {
            let label = format!("feed-{i}");
            let truncated = &good[..good.len() * 2 / 3];
            prop_assert!(matches!(
                faulty.ingest_json(&label, truncated, &archive, &oracle),
                Err(IngestError::MalformedFeed { .. })
            ));
            let a = faulty.ingest_json(&label, good, &archive, &oracle).unwrap();
            let b = clean.ingest_json(&label, good, &archive, &oracle).unwrap();
            prop_assert_eq!(
                a.outcome.database.as_slice(),
                b.outcome.database.as_slice(),
                "cleaned corpus diverged at step {}",
                i
            );
            prop_assert_eq!(
                format!("{:?}", a.outcome.report),
                format!("{:?}", b.outcome.report),
                "report diverged at step {}",
                i
            );
            prop_assert_eq!(
                &a.outcome.ledger,
                &b.outcome.ledger,
                "quality ledger diverged at step {}",
                i
            );
        }
        prop_assert_eq!(faulty.quarantine(), clean.quarantine());
        let fa: Vec<CveEntry> = faulty.database().iter().cloned().collect();
        let cl: Vec<CveEntry> = clean.database().iter().cloned().collect();
        prop_assert_eq!(fa, cl, "raw corpus diverged");
    }
}
