//! End-to-end pipeline runs asserting the paper's calibration bands.

use nvd_clean::cleaner::{CleanOptions, Cleaner};
use nvd_clean::names::OracleVerifier;
use nvd_clean::LagSummary;
use nvd_model::prelude::*;
use nvd_synth::{generate, SynthConfig};

fn pipeline(scale: f64, seed: u64) -> (nvd_synth::SynthCorpus, Database, nvd_clean::CleanReport) {
    let corpus = generate(&SynthConfig::with_scale(scale, seed));
    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let out = Cleaner::default().clean(&corpus.database, &corpus.archive, &oracle);
    (corpus, out.database, out.report)
}

#[test]
fn fig1_zero_lag_band_holds_end_to_end() {
    let (_, db, report) = pipeline(0.03, 101);
    let summary = LagSummary::compute(&db, &report.disclosure);
    // Paper: ≈38% zero lag; ±7pp band for the small corpus.
    assert!(
        (0.31..=0.45).contains(&summary.zero_fraction),
        "zero-lag {}",
        summary.zero_fraction
    );
    assert!(
        summary.within_week_fraction > summary.zero_fraction,
        "CDF must grow"
    );
}

#[test]
fn vendor_reduction_matches_paper_scale() {
    let (_, db, report) = pipeline(0.03, 102);
    // Paper: consolidation removes ≈5% of distinct vendor names.
    let removed = report.names.vendors_before as f64 - report.names.vendors_after as f64;
    let rate = removed / report.names.vendors_before as f64;
    assert!((0.005..0.12).contains(&rate), "vendor removal rate {rate}");
    assert_eq!(db.vendor_set().len(), report.names.vendors_after);
}

#[test]
fn severity_models_order_sanely() {
    let (_, _, report) = pipeline(0.03, 103);
    let sev = report.severity.unwrap();
    // Every model must beat 4-way chance comfortably on banded accuracy.
    for (kind, r) in &sev.reports {
        assert!(
            r.overall_accuracy > 0.40,
            "{kind:?} accuracy {}",
            r.overall_accuracy
        );
        assert!(r.ae < 3.0, "{kind:?} AE {}", r.ae);
    }
    // The winner is at least as good as linear regression, like the paper.
    let lr = sev.reports[&nvd_clean::ModelKind::Lr].overall_accuracy;
    let best = sev.reports[&sev.chosen].overall_accuracy;
    assert!(best >= lr);
}

#[test]
fn backported_severity_skews_upward() {
    let (_, db, report) = pipeline(0.03, 104);
    let sev = report.severity.unwrap();
    let m = &sev.backport_transition;
    // Table 6: the M row sends a large share to High, none/few to Low.
    assert!(m.row_percent(1, 2) > 25.0, "M→H {}", m.row_percent(1, 2));
    assert!(m.row_percent(1, 0) < 10.0, "M→L {}", m.row_percent(1, 0));
    // Predictions cover exactly the v2-only CVEs.
    let v2_only = db
        .iter()
        .filter(|e| e.cvss_v2.is_some() && !e.has_v3())
        .count();
    assert_eq!(sev.predictions.len(), v2_only);
}

#[test]
fn cwe_degenerate_fraction_matches_paper() {
    let (_, db, report) = pipeline(0.03, 105);
    // Paper: ≈31% of entries carry Other/noinfo/unassigned labels.
    let frac = report.cwe.stats.degenerate_fraction(db.len());
    assert!((0.24..0.42).contains(&frac), "degenerate fraction {frac}");
    // Most fixes are Other-entries, like the paper's 1,732 of 2,456.
    assert!(report.cwe.stats.fixed_other >= report.cwe.stats.fixed_missing);
}

#[test]
fn disclosure_estimates_are_never_after_publication() {
    let (_, db, report) = pipeline(0.02, 106);
    for e in db.iter() {
        let est = report.disclosure[&e.id];
        assert!(
            est.estimated <= e.published,
            "{}: estimate {} after published {}",
            e.id,
            est.estimated,
            e.published
        );
    }
}

#[test]
fn cleaning_is_idempotent_on_names() {
    let (corpus, db, _) = pipeline(0.02, 107);
    // Cleaning the already-cleaned database must not change names again
    // (no new candidates confirmed by the oracle).
    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let cleaner = Cleaner::new(CleanOptions {
        run_backport: false,
        ..CleanOptions::default()
    });
    let second = cleaner.clean(&db, &corpus.archive, &oracle);
    let (db2, report2) = (second.database, second.report);
    assert_eq!(
        db.vendor_set().len(),
        db2.vendor_set().len(),
        "second pass changed vendors: {:?}",
        report2.names.mapping.vendor
    );
}
