//! Integration-test crate for the `nvd-clean` workspace.
//!
//! The tests live in `tests/` and exercise cross-crate behaviour: the full
//! cleaning pipeline over generated corpora, determinism, JSON feed
//! round-trips, cross-database mapping, and property-based invariants.
