//! Severity backporting: the §4.3 model zoo on its own.
//!
//! Trains all four models (LR, SVR, CNN, DNN) on the dual-scored subset,
//! prints the Table 5 / Table 7 metrics, and shows how the severity mix of
//! the whole database shifts once every CVE has a v3 rating (Table 9).
//!
//! ```text
//! cargo run --release -p nvd-examples --bin severity_backport [-- --scale 0.02 --seed 17]
//! ```

use std::collections::BTreeMap;

use nvd_clean::severity::{backport_v3, BackportOptions, ModelKind};
use nvd_examples::scale_and_seed;
use nvd_model::prelude::Severity;
use nvd_synth::{generate, SynthConfig};

fn main() {
    let (scale, seed) = scale_and_seed(0.02, 17);
    let corpus = generate(&SynthConfig::with_scale(scale, seed));
    let db = &corpus.database;
    println!(
        "ground truth: {} dual-scored CVEs; backport target: {} v2-only CVEs\n",
        db.iter()
            .filter(|e| e.cvss_v2.is_some() && e.has_v3())
            .count(),
        db.iter()
            .filter(|e| e.cvss_v2.is_some() && !e.has_v3())
            .count(),
    );

    let outcome = backport_v3(
        db,
        &BackportOptions {
            seed,
            ..BackportOptions::default()
        },
    );

    println!("model   AE     AER(%)  accuracy");
    println!("--------------------------------");
    for kind in ModelKind::ALL {
        let r = &outcome.reports[&kind];
        println!(
            "{:<7} {:<6.2} {:<7.2} {:.2}%",
            kind.label(),
            r.ae,
            r.aer_percent,
            100.0 * r.overall_accuracy
        );
    }
    println!(
        "\nchosen model: {} (paper chooses its CNN at 86.29%)",
        outcome.chosen.label()
    );

    // Severity mix before (v2) and after (labelled + predicted v3).
    let mut v2_mix: BTreeMap<Severity, usize> = BTreeMap::new();
    let mut pv3_mix: BTreeMap<Severity, usize> = BTreeMap::new();
    for e in db.iter() {
        if let Some(b) = e.severity_v2() {
            *v2_mix.entry(b).or_insert(0) += 1;
        }
        if let Some(b) = outcome.effective_severity(db, &e.id) {
            *pv3_mix.entry(b).or_insert(0) += 1;
        }
    }
    let total: usize = v2_mix.values().sum();
    println!("\nseverity mix over all {total} scored CVEs (Table 9):");
    println!("band      v2       rectified v3");
    for band in [
        Severity::Low,
        Severity::Medium,
        Severity::High,
        Severity::Critical,
    ] {
        let v2 = *v2_mix.get(&band).unwrap_or(&0);
        let pv3 = *pv3_mix.get(&band).unwrap_or(&0);
        println!(
            "{:<9} {:>5.2}%   {:>5.2}%",
            format!("{band:?}"),
            100.0 * v2 as f64 / total as f64,
            100.0 * pv3 as f64 / total as f64
        );
    }
    println!(
        "\nthe mass shifts towards High/Critical — v3 was designed to account\n\
         for scope, which elevates many formerly-Medium CVEs (paper §4.3)."
    );
}
