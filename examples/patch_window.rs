//! Patch-window analysis: the §4.1 motivation made concrete.
//!
//! A security team prioritising patches needs to know how long each
//! vulnerability has been *public* — the NVD publication date understates
//! that window (Fig. 1: 28% of CVEs enter the NVD more than a week after
//! disclosure). This example measures the window-of-exposure error an
//! analyst would make by trusting the raw NVD date, split by severity.
//!
//! ```text
//! cargo run --release -p nvd-examples --bin patch_window [-- --scale 0.02 --seed 11]
//! ```

use std::collections::BTreeMap;

use nvd_clean::DisclosureEstimator;
use nvd_examples::scale_and_seed;
use nvd_model::prelude::Severity;
use nvd_synth::{generate, SynthConfig};

fn main() {
    let (scale, seed) = scale_and_seed(0.02, 11);
    let corpus = generate(&SynthConfig::with_scale(scale, seed));
    let estimator = DisclosureEstimator::new(&corpus.archive);

    let mut by_band: BTreeMap<Severity, (u64, u64, usize)> = BTreeMap::new();
    let mut worst: Vec<(i32, String)> = Vec::new();
    for entry in corpus.database.iter() {
        let Some(band) = entry.severity_v2() else {
            continue;
        };
        let estimate = estimator.estimate(entry);
        let lag = estimate.lag_days(entry.published).max(0);
        let slot = by_band.entry(band).or_insert((0, 0, 0));
        slot.0 += lag as u64;
        slot.2 += 1;
        if lag > 7 {
            slot.1 += 1;
        }
        worst.push((lag, entry.id.to_string()));
    }

    println!("window-of-exposure error when trusting the raw NVD publication date\n");
    println!("severity  mean error (days)  >1 week");
    println!("-------------------------------------");
    for (band, (sum, over_week, n)) in &by_band {
        println!(
            "{:<9} {:<18.1} {:.1}%",
            format!("{band:?}"),
            *sum as f64 / *n as f64,
            100.0 * *over_week as f64 / *n as f64
        );
    }

    worst.sort_by_key(|(lag, _)| std::cmp::Reverse(*lag));
    println!("\nmost underestimated exposure windows:");
    for (lag, id) in worst.iter().take(5) {
        println!("  {id}: public {lag} days before its NVD date");
    }
    println!(
        "\nlesson: high-severity CVEs lag the most — exactly the entries a\n\
         patch-prioritisation pipeline cares about (paper §4.1)."
    );
}
