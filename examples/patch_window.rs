//! Patch-window analysis: the §4.1 motivation made concrete.
//!
//! A security team prioritising patches needs to know how long each
//! vulnerability has been *public* — the NVD publication date understates
//! that window (Fig. 1: 28% of CVEs enter the NVD more than a week after
//! disclosure). This example drives the analysis through the
//! `nvd_serve::ServeIndex` read path: a `PatchWindow` range scan selects
//! the most recent quarter of publications, point lookups fetch each
//! entry, and a windowed `SeverityHistogram` shows what the team is
//! triaging — then the disclosure estimator measures the exposure error an
//! analyst would make by trusting the raw NVD date, split by severity.
//!
//! ```text
//! cargo run --release -p nvd-examples --example patch_window [-- --scale 0.02 --seed 11]
//! ```

use std::collections::BTreeMap;

use nvd_clean::DisclosureEstimator;
use nvd_examples::scale_and_seed;
use nvd_model::prelude::{Date, Severity};
use nvd_serve::{Query, QueryEngine, QueryResult, ServeIndex};
use nvd_synth::{generate, SynthConfig};

/// Days of publications the triage sweep covers.
const WINDOW_DAYS: i32 = 90;

fn main() {
    let (scale, seed) = scale_and_seed(0.02, 11);
    let corpus = generate(&SynthConfig::with_scale(scale, seed));
    let estimator = DisclosureEstimator::new(&corpus.archive);
    let index = ServeIndex::build(&corpus.database);

    let until = corpus
        .database
        .iter()
        .map(|entry| entry.published)
        .max()
        .expect("non-empty corpus");
    let since = Date::from_day_number(until.day_number() - WINDOW_DAYS);

    let QueryResult::Ids(recent) = index.execute(&Query::PatchWindow { since, until }) else {
        unreachable!("patch windows answer with id lists");
    };
    let QueryResult::SeverityHistogram(bands) = index.execute(&Query::SeverityHistogram {
        window: Some((since, until)),
    }) else {
        unreachable!("severity histograms answer with band buckets");
    };

    println!(
        "triage window {since}..={until}: {} CVEs published, by effective severity:",
        recent.len()
    );
    for (band, count) in &bands {
        println!("  {band:?}: {count}");
    }

    let mut by_band: BTreeMap<Severity, (u64, u64, usize)> = BTreeMap::new();
    let mut worst: Vec<(i32, String)> = Vec::new();
    for id in &recent {
        let entry = index.get(*id).expect("window ids resolve via point lookup");
        let Some(band) = entry.severity_v2() else {
            continue;
        };
        let estimate = estimator.estimate(entry);
        let lag = estimate.lag_days(entry.published).max(0);
        let slot = by_band.entry(band).or_insert((0, 0, 0));
        slot.0 += lag as u64;
        slot.2 += 1;
        if lag > 7 {
            slot.1 += 1;
        }
        worst.push((lag, entry.id.to_string()));
    }

    println!("\nwindow-of-exposure error when trusting the raw NVD publication date\n");
    println!("severity  mean error (days)  >1 week");
    println!("-------------------------------------");
    for (band, (sum, over_week, n)) in &by_band {
        println!(
            "{:<9} {:<18.1} {:.1}%",
            format!("{band:?}"),
            *sum as f64 / *n as f64,
            100.0 * *over_week as f64 / *n as f64
        );
    }

    worst.sort_by_key(|(lag, _)| std::cmp::Reverse(*lag));
    println!("\nmost underestimated exposure windows:");
    for (lag, id) in worst.iter().take(5) {
        println!("  {id}: public {lag} days before its NVD date");
    }
    println!(
        "\nlesson: high-severity CVEs lag the most — exactly the entries a\n\
         patch-prioritisation pipeline cares about (paper §4.1)."
    );
}
