//! Shared helpers for the runnable examples.
//!
//! Each example binary accepts `--scale` and `--seed` so they stay fast by
//! default yet can be pushed to paper scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Parses `--scale F` and `--seed N` from the process arguments, with the
/// given defaults.
pub fn scale_and_seed(default_scale: f64, default_seed: u64) -> (f64, u64) {
    let mut scale = default_scale;
    let mut seed = default_seed;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("numeric value for --scale");
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("numeric value for --seed");
            }
            other => panic!("unknown flag {other:?} (expected --scale / --seed)"),
        }
    }
    (scale, seed)
}
