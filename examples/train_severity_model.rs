//! The batched severity-model training API on a small synthetic corpus.
//!
//! Shows the mlkit kernel layer end to end: a severity-sized design matrix
//! is assembled once, every §4.3 model trains through the batched
//! matrix kernels (`X·Wᵀ` forwards, `Dᵀ·X` gradient reductions), and the
//! whole corpus is scored in one batched predict call — there is no
//! per-sample entry point anywhere. Training is bit-identical at any
//! `NVD_JOBS` setting; rerun under different values to check.
//!
//! ```text
//! cargo run --release -p nvd-examples --example train_severity_model [-- --scale 0.01 --seed 9]
//! ```

use mlkit::matrix::Matrix;
use nvd_clean::severity::{FeatureExtractor, ModelKind, SeverityModel, TrainProfile, FEATURE_DIM};
use nvd_examples::scale_and_seed;
use nvd_synth::{generate, SynthConfig};

fn main() {
    let (scale, seed) = scale_and_seed(0.01, 9);
    let corpus = generate(&SynthConfig::with_scale(scale, seed));

    // Ground truth: every dual-scored CVE, exactly like the backport.
    let ground: Vec<_> = corpus
        .database
        .iter()
        .filter(|e| e.cvss_v2.is_some() && e.cvss_v3.is_some())
        .collect();
    let extractor = FeatureExtractor::fit(ground.iter().copied());

    // One flat design matrix; rows fan out per CVE on the minipar pool.
    let extracted = minipar::par_map(&ground, |e| {
        (
            extractor.extract(e).expect("has v2"),
            e.cvss_v3.as_ref().expect("has v3").base_score,
        )
    });
    let mut rows = Vec::with_capacity(ground.len() * FEATURE_DIM);
    let mut y = Vec::with_capacity(ground.len());
    for (f, target) in &extracted {
        rows.extend_from_slice(f);
        y.push(*target);
    }
    let x = Matrix::from_vec(ground.len(), FEATURE_DIM, rows);
    println!(
        "training corpus: {} dual-scored CVEs × {FEATURE_DIM} features (NVD_JOBS={})\n",
        x.rows(),
        minipar::jobs()
    );

    println!("model   train-AE  batched predictions in [0,10]");
    println!("----------------------------------------------");
    for kind in ModelKind::ALL {
        let start = std::time::Instant::now();
        let model = SeverityModel::train(kind, &x, &y, TrainProfile::Fast, seed);
        // The whole corpus scores in one batched call.
        let pred = model.predict(&x);
        let ae = mlkit::metrics::average_error(&y, &pred);
        let in_range = pred.iter().all(|p| (0.0..=10.0).contains(p));
        println!(
            "{:<7} {:<9.3} {} ({} rows in {:.0?})",
            kind.label(),
            ae,
            if in_range { "yes" } else { "NO" },
            pred.len(),
            start.elapsed()
        );
    }

    println!(
        "\nevery fit above ran on the blocked matrix kernels: dense forward\n\
         passes are one X·Wᵀ per minibatch, weight gradients one Dᵀ·X, and\n\
         the row-band sharding keeps results bit-identical at any NVD_JOBS."
    );
}
