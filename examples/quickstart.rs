//! Quickstart: generate a small synthetic NVD, run the full cleaning
//! pipeline, and print what changed.
//!
//! ```text
//! cargo run --release -p nvd-examples --bin quickstart [-- --scale 0.02 --seed 7]
//! ```

use nvd_clean::cleaner::Cleaner;
use nvd_clean::names::OracleVerifier;
use nvd_examples::scale_and_seed;
use nvd_synth::{generate, SynthConfig};

fn main() {
    let (scale, seed) = scale_and_seed(0.02, 7);
    println!("generating a synthetic NVD at scale {scale} (seed {seed})…");
    let corpus = generate(&SynthConfig::with_scale(scale, seed));
    let stats = corpus.database.stats();
    println!(
        "  {} CVEs, {} vendors, {} products, {} reference pages",
        stats.cve_count,
        stats.distinct_vendors,
        stats.distinct_products,
        corpus.archive.len()
    );

    println!("running the cleaning pipeline (disclosure, names, severity, CWE)…");
    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let outcome = Cleaner::default().clean(&corpus.database, &corpus.archive, &oracle);
    let (cleaned, report, ledger) = (outcome.database, outcome.report, outcome.ledger);

    // §4.1 — disclosure dates.
    let improved = cleaned
        .iter()
        .filter(|e| report.disclosure[&e.id].estimated < e.published)
        .count();
    println!(
        "  disclosure dates: improved {improved} of {} CVEs ({:.1}%)",
        cleaned.len(),
        100.0 * improved as f64 / cleaned.len() as f64
    );

    // §4.2 — names.
    println!(
        "  vendor names: {} → {} (candidates {}, confirmed {})",
        report.names.vendors_before,
        report.names.vendors_after,
        report.names.vendor_candidates,
        report.names.vendor_confirmed
    );
    println!(
        "  product names: {} → {}",
        report.names.products_before, report.names.products_after
    );

    // §4.3 — severity.
    let severity = report.severity.as_ref().expect("backport ran");
    let best = &severity.reports[&severity.chosen];
    println!(
        "  severity backport: {} model chosen, {:.2}% banded accuracy, {} CVEs backported",
        severity.chosen.label(),
        100.0 * best.overall_accuracy,
        severity.predictions.len()
    );

    // §4.4 — CWE.
    println!(
        "  CWE fixes: {} entries corrected ({} were NVD-CWE-Other)",
        report.cwe.stats.total_corrected(),
        report.cwe.stats.fixed_other
    );

    // Quality ledger — the typed per-CVE view of everything above.
    let quality = ledger.corpus_quality(&cleaned);
    println!(
        "  quality ledger: {} issues on {} of {} CVEs ({} auto-fixed, {} need review)",
        ledger.total_issues(),
        quality.entries_with_issues,
        quality.entries,
        quality.auto_fixed,
        quality.needs_review
    );
    println!(
        "  corpus score: completeness {:.1}, consistency {:.1}, accuracy {:.1} (overall {:.1}/100)",
        quality.mean(nvd_clean::ScoreAxis::Completeness),
        quality.mean(nvd_clean::ScoreAxis::Consistency),
        quality.mean(nvd_clean::ScoreAxis::Accuracy),
        quality.mean(nvd_clean::ScoreAxis::Overall)
    );
    println!("done.");
}
