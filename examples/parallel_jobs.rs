//! Parallelism demo: run corpus generation and the cleaning pipeline at
//! several `NVD_JOBS` widths, time each, and verify the outputs are
//! bit-identical — the pipeline's hard determinism guarantee.
//!
//! ```text
//! cargo run --release -p nvd-examples --example parallel_jobs [-- --scale 0.02 --seed 7]
//! NVD_JOBS=8 cargo run --release -p nvd-examples --example parallel_jobs
//! ```

use std::time::Instant;

use nvd_clean::cleaner::Cleaner;
use nvd_clean::names::OracleVerifier;
use nvd_examples::scale_and_seed;
use nvd_synth::{generate, SynthConfig};

fn main() {
    let (scale, seed) = scale_and_seed(0.02, 7);
    let config = SynthConfig::with_scale(scale, seed);
    println!(
        "corpus scale {scale}, seed {seed}; ambient job count {} (set NVD_JOBS to override)",
        minipar::jobs()
    );

    let mut digests = Vec::new();
    for jobs in [1, 2, 4] {
        let started = Instant::now();
        let (digest, cleaned_len, confirmed) = minipar::with_jobs(jobs, || {
            let corpus = generate(&config);
            let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
            let out = Cleaner::default().clean(&corpus.database, &corpus.archive, &oracle);
            (
                corpus.digest(),
                out.database.len(),
                out.report.names.vendor_confirmed,
            )
        });
        println!(
            "  jobs={jobs}: {:>6.2}s  corpus digest {digest:016x}  ({cleaned_len} CVEs, {confirmed} pairs confirmed)",
            started.elapsed().as_secs_f64()
        );
        digests.push(digest);
    }

    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "determinism violated: digests differ across job counts"
    );
    println!("all job counts produced bit-identical corpora — determinism holds.");
}
