//! Incremental ingestion demo: replay a seeded dated delta stream through
//! the carried [`CleanState`] and the warm `nvd-serve` index, timing each
//! delta against a clean-from-scratch + index rebuild of the same corpus,
//! and verifying both paths agree bit for bit.
//!
//! ```text
//! cargo run --release -p nvd-examples --example delta_replay [-- --scale 0.01 --seed 7]
//! ```

use std::time::Instant;

use nvd_clean::cleaner::{CleanOptions, Cleaner};
use nvd_clean::names::OracleVerifier;
use nvd_clean::CleanState;
use nvd_examples::scale_and_seed;
use nvd_model::prelude::{CveId, Database};
use nvd_serve::ServeIndex;
use nvd_synth::delta::generate_delta_stream;
use nvd_synth::SynthConfig;

const FEED_COUNT: usize = 4;

fn main() {
    let (scale, seed) = scale_and_seed(0.01, 7);
    let stream = generate_delta_stream(&SynthConfig::with_scale(scale, seed), FEED_COUNT);
    let oracle = OracleVerifier::new(stream.corpus.truth.vendor_alias_map());
    let archive = &stream.corpus.archive;
    // The §4.3 backport is whole-corpus either way; the incremental axis
    // is demonstrated with it off (same as the gated bench).
    let options = CleanOptions {
        run_backport: false,
        ..CleanOptions::default()
    };
    let cleaner = Cleaner::new(options.clone());

    println!(
        "delta stream at scale {scale}, seed {seed}: base snapshot of {} CVEs + {} dated feeds",
        stream.base.len(),
        stream.feeds.len()
    );

    let mut state = CleanState::new(options);
    let mut raw = Database::new();
    let mut serve = ServeIndex::with_shards(&raw, ServeIndex::DEFAULT_SHARDS).into_state();

    let base: Vec<_> = stream.base.iter().cloned().collect();
    let mut deltas = vec![("base".to_owned(), base)];
    for (i, feed) in stream.feeds.iter().enumerate() {
        deltas.push((format!("feed {}", i + 1), feed.entries()));
    }

    for (label, entries) in &deltas {
        // Incremental path: absorb the delta into the carried clean state
        // and the warm serve index.
        let started = Instant::now();
        let inc = state.apply_delta(entries, archive, &oracle);
        let touched: Vec<CveId> = entries.iter().map(|e| e.id).collect();
        for entry in entries {
            raw.push(entry.clone());
        }
        serve.apply_delta(&raw, &touched);
        let incremental = started.elapsed();

        // Batch path over the same accumulated corpus, for comparison and
        // as a live equivalence check.
        let started = Instant::now();
        let batch = cleaner.clean(&raw, archive, &oracle);
        let rebuilt = ServeIndex::with_shards(&raw, ServeIndex::DEFAULT_SHARDS);
        let from_scratch = started.elapsed();

        assert_eq!(
            inc.database.as_slice(),
            batch.database.as_slice(),
            "clean diverged"
        );
        assert_eq!(
            format!("{:?}", inc.report),
            format!("{:?}", batch.report),
            "report diverged"
        );
        assert_eq!(inc.ledger, batch.ledger, "quality ledger diverged");
        assert_eq!(serve.digest(), rebuilt.digest(), "serve index diverged");

        println!(
            "  {label:<7} +{:>4} entries → {:>5} total: incremental {:>7.2?} vs from-scratch {:>7.2?} ({} vendors confirmed)",
            entries.len(),
            raw.len(),
            incremental,
            from_scratch,
            inc.report.names.vendor_confirmed
        );
    }

    println!(
        "final corpus {} CVEs, serve digest {:016x} — incremental replay matched batch at every delta.",
        raw.len(),
        serve.digest()
    );
}
