//! Vendor watchlist audit: the §4.2 motivation made concrete.
//!
//! "Practitioners depend on lists of vendors and products affected by a CVE
//! to identify vulnerabilities affecting software they use" — but alias
//! names silently drop entries from any watchlist keyed on exact vendor
//! strings. This example serves the dirty and the cleaned database through
//! `nvd_serve::ServeIndex` — the same sharded read path a production
//! watchlist would poll — and reports what exact-string watch queries
//! would have missed before name cleaning.
//!
//! ```text
//! cargo run --release -p nvd-examples --example vendor_watch [-- --scale 0.02 --seed 13]
//! ```

use nvd_clean::cleaner::Cleaner;
use nvd_clean::names::OracleVerifier;
use nvd_examples::scale_and_seed;
use nvd_model::prelude::{Severity, VendorName};
use nvd_serve::{Query, QueryEngine, ServeIndex};
use nvd_synth::{generate, SynthConfig};

fn main() {
    let (scale, seed) = scale_and_seed(0.02, 13);
    let corpus = generate(&SynthConfig::with_scale(scale, seed));
    let watchlist = [
        "microsoft",
        "linux",
        "openssl",
        "avast",
        "bea",
        "quickheal",
        "tor",
    ];

    let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
    let outcome = Cleaner::default().clean(&corpus.database, &corpus.archive, &oracle);
    let (cleaned, report) = (outcome.database, outcome.report);

    // One immutable index per database snapshot: the watch sweep below is
    // interned-postings lookups, not per-vendor database walks.
    let dirty_index = ServeIndex::build(&corpus.database);
    let clean_index = ServeIndex::build(&cleaned);

    println!("vendor watchlist audit: CVE counts before vs after name cleaning\n");
    println!(
        "{:<22} {:>7} {:>7} {:>8}",
        "vendor", "before", "after", "missed"
    );
    println!("{}", "-".repeat(48));
    let mut total_missed = 0usize;
    for name in watchlist {
        let query = Query::VendorWatch(VendorName::new(name));
        let before = dirty_index.execute(&query).len();
        let after = clean_index.execute(&query).len();
        let missed = after.saturating_sub(before);
        total_missed += missed;
        println!("{name:<22} {before:>7} {after:>7} {missed:>8}");
    }

    // How severe were the missed entries?
    let severity = report.severity.as_ref().expect("backport ran");
    let critical_missed = report
        .names
        .apply_stats
        .cves_with_vendor_fixes
        .iter()
        .filter(|id| severity.effective_severity(&cleaned, id) == Some(Severity::Critical))
        .count();
    println!(
        "\n{total_missed} CVEs were invisible to exact-string watchlists; {critical_missed} \
         of all vendor-mislabeled CVEs are critical under rectified v3\n\
         (paper Table 12: \"it only takes one missed vulnerability\")."
    );
}
